package sim

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/channel"
	"repro/internal/ioa"
	"repro/internal/protocol"
)

func runProtocol(t *testing.T, p protocol.Protocol, n int, cfgMod func(*Config)) Result {
	t.Helper()
	cfg := Config{Protocol: p, RecordTrace: true}
	if cfgMod != nil {
		cfgMod(&cfg)
	}
	res := NewRunner(cfg).Run(n)
	if res.Err != nil {
		t.Fatalf("%s: run failed: %v", p.Name(), res.Err)
	}
	return res
}

func TestAllProtocolsValidOverReliableChannel(t *testing.T) {
	reg := protocol.Registry()
	for _, name := range protocol.Names() {
		p := reg[name]
		t.Run(p.Name(), func(t *testing.T) {
			res := runProtocol(t, p, 10, nil)
			if len(res.Delivered) != 10 {
				t.Fatalf("delivered %d messages, want 10", len(res.Delivered))
			}
			if err := ioa.CheckValid(res.Trace); err != nil {
				t.Fatalf("trace invalid: %v\n%s", err, res.Trace)
			}
		})
	}
}

func TestDeliveredPayloadsInOrder(t *testing.T) {
	res := runProtocol(t, protocol.NewSeqNum(), 5, nil)
	want := []string{"msg-0", "msg-1", "msg-2", "msg-3", "msg-4"}
	for i, w := range want {
		if res.Delivered[i] != w {
			t.Fatalf("delivered %v, want %v", res.Delivered, want)
		}
	}
}

func TestPerfectChannelPacketCounts(t *testing.T) {
	// On a reliable channel, altbit and seqnum deliver each message with
	// exactly one data packet.
	for _, p := range []protocol.Protocol{protocol.NewAltBit(), protocol.NewSeqNum()} {
		res := runProtocol(t, p, 4, nil)
		for i, c := range res.Metrics.DataPacketsPerMessage {
			if c != 1 {
				t.Fatalf("%s: message %d used %d data packets, want 1 (%v)",
					p.Name(), i, c, res.Metrics.DataPacketsPerMessage)
			}
		}
	}
}

func TestHeadersUsedMetric(t *testing.T) {
	altbit := runProtocol(t, protocol.NewAltBit(), 8, nil)
	if altbit.Metrics.HeadersUsed != 4 {
		t.Fatalf("altbit headers = %d, want 4", altbit.Metrics.HeadersUsed)
	}
	seqnum := runProtocol(t, protocol.NewSeqNum(), 8, nil)
	if seqnum.Metrics.HeadersUsed != 16 { // 8 data + 8 ack headers
		t.Fatalf("seqnum headers = %d, want 16", seqnum.Metrics.HeadersUsed)
	}
}

func TestLossySafetyAndLiveness(t *testing.T) {
	// Drop every 3rd packet on both channels; every registry protocol
	// must still deliver all messages with a valid trace. (DropEvery is
	// deterministic, so the run is reproducible.)
	reg := protocol.Registry()
	for _, name := range protocol.Names() {
		p := reg[name]
		t.Run(p.Name(), func(t *testing.T) {
			res := runProtocol(t, p, 6, func(c *Config) {
				c.DataPolicy = channel.DropEvery(3)
				c.AckPolicy = channel.DropEvery(4)
			})
			if len(res.Delivered) != 6 {
				t.Fatalf("delivered %d of 6", len(res.Delivered))
			}
			if err := ioa.CheckValid(res.Trace); err != nil {
				t.Fatalf("trace invalid: %v", err)
			}
		})
	}
}

func TestProbabilisticChannelSafetyAndLiveness(t *testing.T) {
	// The probabilistic physical layer (PL2p) with q=0.3 on data, q=0.2 on
	// acks. Counting protocols must survive the accumulating stale copies.
	reg := protocol.Registry()
	for _, name := range protocol.Names() {
		p := reg[name]
		t.Run(p.Name(), func(t *testing.T) {
			res := runProtocol(t, p, 6, func(c *Config) {
				c.DataPolicy = channel.Probabilistic(0.3, rand.New(rand.NewSource(7)))
				c.AckPolicy = channel.Probabilistic(0.2, rand.New(rand.NewSource(8)))
			})
			if len(res.Delivered) != 6 {
				t.Fatalf("delivered %d of 6", len(res.Delivered))
			}
			if err := ioa.CheckValid(res.Trace); err != nil {
				t.Fatalf("trace invalid: %v", err)
			}
		})
	}
}

func TestProbabilisticDeterministicUnderSeed(t *testing.T) {
	run := func() Metrics {
		return NewRunner(Config{
			Protocol:   protocol.NewCntLinear(),
			DataPolicy: channel.Probabilistic(0.4, rand.New(rand.NewSource(3))),
			AckPolicy:  channel.Probabilistic(0.4, rand.New(rand.NewSource(4))),
		}).Run(5).Metrics
	}
	a, b := run(), run()
	if a.TotalDataPackets != b.TotalDataPackets || a.TotalAckPackets != b.TotalAckPackets {
		t.Fatalf("same seeds gave different runs: %+v vs %+v", a, b)
	}
}

func TestCntLinearCostGrowsWithStrandedCopies(t *testing.T) {
	// Delay the first 8 data packets: they become stale copies, and the
	// counting receiver's later thresholds must rise accordingly.
	res := runProtocol(t, protocol.NewCntLinear(), 4, func(c *Config) {
		c.DataPolicy = channel.DelayFirst(8)
	})
	ppm := res.Metrics.DataPacketsPerMessage
	// Message 0 pays the 8 delayed copies plus one delivered: ≥ 9.
	if ppm[0] < 9 {
		t.Fatalf("message 0 cost %d, want ≥ 9 (%v)", ppm[0], ppm)
	}
	// Message 2 is the next same-bit phase: it faces 8 stale copies and
	// must send ≥ 9 packets.
	if ppm[2] < 9 {
		t.Fatalf("message 2 cost %d, want ≥ 9 (%v)", ppm[2], ppm)
	}
	if err := ioa.CheckValid(res.Trace); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
}

func TestStalledRunReportsErrStalled(t *testing.T) {
	// Dropping every packet on the data channel makes delivery impossible;
	// the run must fail with ErrStalled rather than spin forever.
	res := NewRunner(Config{
		Protocol:   protocol.NewAltBit(),
		DataPolicy: channel.DropEvery(1),
		StepBudget: 500,
	}).Run(1)
	if res.Err == nil || !errors.Is(res.Err, ErrStalled) {
		t.Fatalf("expected ErrStalled, got %v", res.Err)
	}
}

func TestDeliverStaleReplaysInTransitCopy(t *testing.T) {
	// Delay altbit's first data packet, finish two messages, then replay
	// the stale copy: the receiver (wrongly) delivers it, and the trace
	// checker catches the DL1 violation. This is the E0 mechanism at the
	// runner level.
	r := NewRunner(Config{
		Protocol:    protocol.NewAltBit(),
		DataPolicy:  channel.DelayFirst(1),
		RecordTrace: true,
	})
	if err := r.RunMessage("m0"); err != nil {
		t.Fatal(err)
	}
	if err := r.RunMessage("m1"); err != nil {
		t.Fatal(err)
	}
	stale := ioa.Packet{Header: "d0", Payload: "m0"}
	if r.ChData.Count(stale) != 1 {
		t.Fatalf("expected one stale d0 copy, channel = %s", r.ChData.Key())
	}
	if err := r.DeliverStale(ioa.TtoR, stale); err != nil {
		t.Fatal(err)
	}
	res := r.Result()
	if len(res.Delivered) != 3 {
		t.Fatalf("replay should have caused a third delivery, got %v", res.Delivered)
	}
	err := ioa.CheckSafety(res.Trace)
	if err == nil {
		t.Fatal("checker accepted the invalid execution")
	}
	if v, _ := ioa.AsViolation(err); v.Property != "DL1" {
		t.Fatalf("expected DL1 violation, got %v", err)
	}
}

func TestDeliverStaleRejectsAbsentCopy(t *testing.T) {
	r := NewRunner(Config{Protocol: protocol.NewAltBit()})
	if err := r.DeliverStale(ioa.TtoR, ioa.Packet{Header: "d0"}); err == nil {
		t.Fatal("DeliverStale of an absent packet must fail (PL1)")
	}
	if err := r.DeliverStale(ioa.Dir(99), ioa.Packet{}); err == nil {
		t.Fatal("DeliverStale with bad direction must fail")
	}
}

func TestTraceRecordingOptional(t *testing.T) {
	res := NewRunner(Config{Protocol: protocol.NewSeqNum()}).Run(3)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Trace != nil {
		t.Fatal("trace should be nil when RecordTrace is false")
	}
	if res.Metrics.TotalDataPackets == 0 {
		t.Fatal("metrics must be collected even without trace recording")
	}
}

func TestMetricsInTransitAndState(t *testing.T) {
	res := runProtocol(t, protocol.NewCntLinear(), 3, func(c *Config) {
		c.DataPolicy = channel.DelayFirst(5)
	})
	if res.Metrics.MaxInTransitData < 5 {
		t.Fatalf("MaxInTransitData = %d, want ≥ 5", res.Metrics.MaxInTransitData)
	}
	if res.Metrics.MaxStateSize <= 0 {
		t.Fatal("MaxStateSize not sampled")
	}
}

func TestConstantPayloadConvention(t *testing.T) {
	// The paper's "all messages are the same" convention: same payload for
	// every message; the trace must still check out (IDs disambiguate).
	res := runProtocol(t, protocol.NewCntLinear(), 5, func(c *Config) {
		c.Payload = func(int) string { return "m" }
	})
	if err := ioa.CheckValid(res.Trace); err != nil {
		t.Fatalf("constant-payload trace invalid: %v", err)
	}
	for _, d := range res.Delivered {
		if d != "m" {
			t.Fatalf("delivered %v", res.Delivered)
		}
	}
}

func TestTraceCountsMatchMetrics(t *testing.T) {
	res := runProtocol(t, protocol.NewCntExp(), 4, func(c *Config) {
		c.DataPolicy = channel.DropEvery(5)
	})
	c := res.Trace.Count()
	if c.SPtoR != res.Metrics.TotalDataPackets {
		t.Fatalf("trace sp^t→r=%d, metrics=%d", c.SPtoR, res.Metrics.TotalDataPackets)
	}
	if c.SPtoT != res.Metrics.TotalAckPackets {
		t.Fatalf("trace sp^r→t=%d, metrics=%d", c.SPtoT, res.Metrics.TotalAckPackets)
	}
	if c.SM != 4 || c.RM != 4 {
		t.Fatalf("sm=%d rm=%d", c.SM, c.RM)
	}
	sum := 0
	for _, n := range res.Metrics.DataPacketsPerMessage {
		sum += n
	}
	if sum != res.Metrics.TotalDataPackets {
		t.Fatalf("per-message sum %d != total %d", sum, res.Metrics.TotalDataPackets)
	}
}

func TestRunnerTraceSatisfiesPL1Always(t *testing.T) {
	// Whatever the policy mix, the recorded trace must satisfy PL1 on both
	// channels: the channel construction guarantees it.
	policies := []func() channel.Policy{
		channel.Reliable,
		func() channel.Policy { return channel.DropEvery(2) },
		func() channel.Policy { return channel.DelayFirst(7) },
		func() channel.Policy { return channel.Probabilistic(0.5, rand.New(rand.NewSource(11))) },
	}
	for _, mk := range policies {
		res := runProtocol(t, protocol.NewSeqNum(), 4, func(c *Config) {
			c.DataPolicy = mk()
			c.AckPolicy = mk()
		})
		if err := ioa.CheckPL1(res.Trace, ioa.TtoR); err != nil {
			t.Fatalf("PL1 t→r: %v", err)
		}
		if err := ioa.CheckPL1(res.Trace, ioa.RtoT); err != nil {
			t.Fatalf("PL1 r→t: %v", err)
		}
	}
}

func TestCntExpExponentialCostVisibleInMetrics(t *testing.T) {
	res := runProtocol(t, protocol.NewCntExp(), 10, nil)
	ppm := res.Metrics.DataPacketsPerMessage
	if ppm[8] < 4*ppm[4] {
		t.Fatalf("cntexp per-message cost not exponential: %v", ppm)
	}
}

func TestRunPartialResultOnError(t *testing.T) {
	res := NewRunner(Config{
		Protocol:   protocol.NewAltBit(),
		DataPolicy: channel.DropEvery(1),
		StepBudget: 100,
	}).Run(3)
	if res.Err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(res.Err.Error(), "message 0") {
		t.Fatalf("error should identify the failing message: %v", res.Err)
	}
	if res.Metrics.TotalDataPackets == 0 {
		t.Fatal("partial metrics should be available")
	}
}

func TestForkIndependence(t *testing.T) {
	r := NewRunner(Config{Protocol: protocol.NewCntLinear(), RecordTrace: true})
	if err := r.RunMessage("m0"); err != nil {
		t.Fatal(err)
	}
	f := r.Fork(nil, nil)
	if err := f.RunMessage("m1"); err != nil {
		t.Fatal(err)
	}
	if len(f.Delivered()) != 2 || len(r.Delivered()) != 1 {
		t.Fatalf("fork not independent: fork=%v orig=%v", f.Delivered(), r.Delivered())
	}
	if r.T.StateKey() == f.T.StateKey() {
		t.Fatal("fork transmitter state should have diverged")
	}
	// The original's trace must be untouched by the fork's activity.
	if err := ioa.CheckSemiValid(r.Recorder().Trace()); err == nil {
		// r has sm == rm == 1, so semi-valid must FAIL (needs sm=rm+1).
		_ = err
	}
	if got := r.Recorder().Trace().Count(); got.SM != 1 {
		t.Fatalf("original trace mutated by fork: %+v", got)
	}
}

func TestForkRebindsGenies(t *testing.T) {
	// Strand 3 stale data copies, fork, and let the fork deliver the next
	// same-bit message over a reliable channel: if the fork's receiver
	// still consulted the ORIGINAL channel its stale snapshot would be
	// wrong once the two channels diverge. We make them diverge by
	// delivering the original's stale copies before the fork's phase
	// starts.
	r := NewRunner(Config{Protocol: protocol.NewCntLinear(), DataPolicy: channel.DelayFirst(3)})
	if err := r.RunMessage("m0"); err != nil {
		t.Fatal(err)
	}
	f := r.Fork(nil, nil)
	// Drain the ORIGINAL channel's stale copies.
	for _, p := range r.ChData.Packets() {
		for r.ChData.Count(p) > 0 {
			if err := r.DeliverStale(ioa.TtoR, p); err != nil {
				t.Fatal(err)
			}
		}
	}
	if r.ChData.InTransit() != 0 || f.ChData.InTransit() != 3 {
		t.Fatalf("channel divergence failed: orig=%d fork=%d", r.ChData.InTransit(), f.ChData.InTransit())
	}
	// The fork delivers m1 (bit 1) then m2 (bit 0). m2's receiver snapshot
	// must see the FORK's 3 stale c0 copies, so m2 costs ≥ 4 data packets.
	if err := f.RunMessage("m1"); err != nil {
		t.Fatal(err)
	}
	if err := f.RunMessage("m2"); err != nil {
		t.Fatal(err)
	}
	ppm := f.Result().Metrics.DataPacketsPerMessage
	if ppm[2] < 4 {
		t.Fatalf("fork receiver consulted the wrong genie: m2 cost %d, want ≥ 4 (%v)", ppm[2], ppm)
	}
}

func TestForkPoliciesIndependent(t *testing.T) {
	r := NewRunner(Config{Protocol: protocol.NewSeqNum(), DataPolicy: channel.DelayAll()})
	f := r.Fork(nil, nil) // reliable fork
	if err := f.RunMessage("m0"); err != nil {
		t.Fatalf("fork with reliable policy should deliver: %v", err)
	}
	r.SetPolicies(channel.Reliable(), nil)
	if err := r.RunMessage("m0"); err != nil {
		t.Fatalf("SetPolicies should take effect: %v", err)
	}
}

// randomPolicy builds a deterministic policy from a byte script: each sent
// packet's fate is chosen by the next byte (delay/drop/deliver). This is a
// property-based channel adversary: arbitrary loss/delay schedules.
func randomPolicy(script []byte) channel.Policy {
	i := 0
	return channel.PolicyFunc(func(ioa.Packet) channel.Decision {
		if i >= len(script) {
			return channel.DeliverNow
		}
		b := script[i]
		i++
		switch b % 4 {
		case 0:
			return channel.Delay
		case 1:
			return channel.Drop
		default:
			return channel.DeliverNow
		}
	})
}

// TestQuickSafetyUnderArbitrarySchedules: whatever loss/delay schedule the
// channel follows, the safe protocols' recorded traces must satisfy the
// safety properties. (Liveness may fail — a hostile schedule can starve the
// run — so budget exhaustion is tolerated; safety must hold on the partial
// trace regardless.)
func TestQuickSafetyUnderArbitrarySchedules(t *testing.T) {
	protocols := []protocol.Protocol{
		protocol.NewSeqNum(),
		protocol.NewCntLinear(),
		protocol.NewCntExp(),
	}
	f := func(dataScript, ackScript []byte, pick uint8) bool {
		p := protocols[int(pick)%len(protocols)]
		r := NewRunner(Config{
			Protocol:    p,
			DataPolicy:  randomPolicy(dataScript),
			AckPolicy:   randomPolicy(ackScript),
			StepBudget:  4096,
			RecordTrace: true,
		})
		res := r.Run(3)
		// res.Err may be ErrStalled under hostile schedules: fine.
		return ioa.CheckSafety(res.Trace) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeliveredIsPrefixOfSent: under any schedule, the delivered
// payload sequence of a safe protocol is a prefix of the submitted one.
func TestQuickDeliveredIsPrefixOfSent(t *testing.T) {
	f := func(dataScript []byte) bool {
		r := NewRunner(Config{
			Protocol:   protocol.NewSeqNum(),
			DataPolicy: randomPolicy(dataScript),
			StepBudget: 4096,
		})
		res := r.Run(4)
		want := []string{"msg-0", "msg-1", "msg-2", "msg-3"}
		if len(res.Delivered) > len(want) {
			return false
		}
		for i, d := range res.Delivered {
			if d != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestForkOfFork(t *testing.T) {
	r := NewRunner(Config{Protocol: protocol.NewCntLinear(), DataPolicy: channel.DelayFirst(2), RecordTrace: true})
	if err := r.RunMessage("m0"); err != nil {
		t.Fatal(err)
	}
	f1 := r.Fork(nil, nil)
	if err := f1.RunMessage("m1"); err != nil {
		t.Fatal(err)
	}
	f2 := f1.Fork(nil, nil)
	if err := f2.RunMessage("m2"); err != nil {
		t.Fatal(err)
	}
	if len(r.Delivered()) != 1 || len(f1.Delivered()) != 2 || len(f2.Delivered()) != 3 {
		t.Fatalf("fork chain broken: %d/%d/%d",
			len(r.Delivered()), len(f1.Delivered()), len(f2.Delivered()))
	}
	if err := ioa.CheckValid(f2.Result().Trace); err != nil {
		t.Fatalf("grandchild trace invalid: %v", err)
	}
}

func TestSetPoliciesNilKeepsCurrent(t *testing.T) {
	r := NewRunner(Config{Protocol: protocol.NewSeqNum(), DataPolicy: channel.DelayAll()})
	r.SetPolicies(nil, nil) // no-op
	r.SubmitMsg("m")
	if r.StepTransmit(); r.ChData.InTransit() != 1 {
		t.Fatal("nil SetPolicies should keep the delaying policy")
	}
	r.SetPolicies(channel.Reliable(), nil)
	if err := r.RunToIdle(); err != nil {
		t.Fatal(err)
	}
}

func TestSentMessagesCounter(t *testing.T) {
	r := NewRunner(Config{Protocol: protocol.NewSeqNum()})
	r.SubmitMsg("a")
	r.SubmitMsg("b")
	if r.SentMessages() != 2 {
		t.Fatalf("SentMessages = %d", r.SentMessages())
	}
}

// TestSoakLongRun exercises the unbounded-header protocols over a long
// probabilistic run: stability, monotone counters, valid trace.
func TestSoakLongRun(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	for _, p := range []protocol.Protocol{protocol.NewSeqNum()} {
		r := NewRunner(Config{
			Protocol:    p,
			DataPolicy:  channel.Probabilistic(0.3, rand.New(rand.NewSource(99))),
			AckPolicy:   channel.Probabilistic(0.3, rand.New(rand.NewSource(100))),
			RecordTrace: true,
		})
		res := r.Run(500)
		if res.Err != nil {
			t.Fatalf("%s: %v", p.Name(), res.Err)
		}
		if len(res.Delivered) != 500 {
			t.Fatalf("%s: delivered %d", p.Name(), len(res.Delivered))
		}
		if err := ioa.CheckValid(res.Trace); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		// The naive protocol's packet bill stays linear even here.
		if res.Metrics.TotalDataPackets > 5*500 {
			t.Fatalf("%s: %d packets for 500 messages", p.Name(), res.Metrics.TotalDataPackets)
		}
	}
}
