package netlink

import (
	"fmt"
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/protocol"
	"repro/internal/transport"
)

const flushTimeout = 10 * time.Second

func collect(t *testing.T, out <-chan string, n int) []string {
	t.Helper()
	var got []string
	deadline := time.After(flushTimeout)
	for len(got) < n {
		select {
		case p, ok := <-out:
			if !ok {
				t.Fatalf("output closed after %d of %d payloads", len(got), n)
			}
			got = append(got, p)
		case <-deadline:
			t.Fatalf("timeout after %d of %d payloads", len(got), n)
		}
	}
	return got
}

func sendAll(t *testing.T, pair *Pair, n int) []string {
	t.Helper()
	want := make([]string, n)
	for i := range want {
		want[i] = fmt.Sprintf("payload-%d", i)
		if err := pair.Sender.Send(want[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := pair.Sender.Flush(flushTimeout); err != nil {
		t.Fatal(err)
	}
	return want
}

func TestSeqnumOverLoopbackUDP(t *testing.T) {
	pair, err := NewLoopbackPair(protocol.NewSeqNum(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pair.Close()

	want := sendAll(t, pair, 20)
	got := collect(t, pair.Receiver.Out(), len(want))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivered %v, want %v", got, want)
		}
	}
}

func TestAltbitOverCleanLoopback(t *testing.T) {
	// Loopback UDP is effectively FIFO and lossless at this rate, so even
	// the alternating bit protocol works.
	pair, err := NewLoopbackPair(protocol.NewAltBit(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pair.Close()
	want := sendAll(t, pair, 10)
	got := collect(t, pair.Receiver.Out(), len(want))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivered %v, want %v", got, want)
		}
	}
}

func TestSeqnumSurvivesChaos(t *testing.T) {
	// 25% loss + 25% reordering on every datagram, both directions: the
	// unbounded-header protocol delivers everything in order regardless.
	seed := int64(0)
	wrap := func(c net.PacketConn) net.PacketConn {
		seed++
		return NewChaosConn(c, ChaosConfig{DropProb: 0.25, HoldProb: 0.25, Seed: seed})
	}
	pair, err := NewLoopbackPair(protocol.NewSeqNum(), wrap, WithResendInterval(500*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	defer pair.Close()

	want := sendAll(t, pair, 30)
	got := collect(t, pair.Receiver.Out(), len(want))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivered %v, want %v", got, want)
		}
	}
}

func TestUnboundedTransportsSurviveChaos(t *testing.T) {
	for _, p := range []protocol.Protocol{transport.New(0, 4), transport.NewGoBackN(0, 4)} {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			seed := int64(100)
			wrap := func(c net.PacketConn) net.PacketConn {
				seed++
				return NewChaosConn(c, ChaosConfig{DropProb: 0.2, HoldProb: 0.2, Seed: seed})
			}
			pair, err := NewLoopbackPair(p, wrap, WithResendInterval(500*time.Microsecond))
			if err != nil {
				t.Fatal(err)
			}
			defer pair.Close()
			want := sendAll(t, pair, 16)
			got := collect(t, pair.Receiver.Out(), len(want))
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("delivered %v, want %v", got, want)
				}
			}
		})
	}
}

func TestSendAfterCloseFails(t *testing.T) {
	pair, err := NewLoopbackPair(protocol.NewSeqNum(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := pair.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pair.Sender.Send("x"); err != ErrClosed {
		t.Fatalf("Send after close = %v, want ErrClosed", err)
	}
	if err := pair.Sender.Flush(time.Second); err != ErrClosed {
		t.Fatalf("Flush after close = %v, want ErrClosed", err)
	}
}

func TestCloseIsIdempotentAndStopsGoroutines(t *testing.T) {
	pair, err := NewLoopbackPair(protocol.NewSeqNum(), nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = sendAll(t, pair, 3)
	if err := pair.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pair.Close(); err != nil {
		t.Fatal(err)
	}
	// The receiver's output channel must be closed after Close.
	for range pair.Receiver.Out() {
	}
}

func TestFlushTimeout(t *testing.T) {
	// A sender whose datagrams all vanish can never confirm.
	wrap := func(c net.PacketConn) net.PacketConn {
		return NewChaosConn(c, ChaosConfig{DropProb: 1.0, Seed: 1})
	}
	pair, err := NewLoopbackPair(protocol.NewSeqNum(), wrap)
	if err != nil {
		t.Fatal(err)
	}
	defer pair.Close()
	if err := pair.Sender.Send("doomed"); err != nil {
		t.Fatal(err)
	}
	if err := pair.Sender.Flush(50 * time.Millisecond); err != ErrFlushTimeout {
		t.Fatalf("Flush = %v, want ErrFlushTimeout", err)
	}
}

func TestFlushOnIdleSenderReturnsImmediately(t *testing.T) {
	pair, err := NewLoopbackPair(protocol.NewSeqNum(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pair.Close()
	if err := pair.Sender.Flush(time.Second); err != nil {
		t.Fatalf("idle flush: %v", err)
	}
}

func TestChaosConnDropAll(t *testing.T) {
	inner, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := NewChaosConn(inner, ChaosConfig{DropProb: 1.0})
	defer c.Close()
	n, err := c.WriteTo([]byte("x"), inner.LocalAddr())
	if err != nil || n != 1 {
		t.Fatalf("dropped write should report success: %d, %v", n, err)
	}
}

func TestChaosConnHoldAndFlush(t *testing.T) {
	a, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	c := NewChaosConn(a, ChaosConfig{HoldProb: 1.0, Seed: 3})
	defer c.Close()

	if _, err := c.WriteTo([]byte("held"), b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if c.HeldCount() != 1 {
		t.Fatalf("held = %d, want 1", c.HeldCount())
	}
	c.FlushHeld()
	if c.HeldCount() != 0 {
		t.Fatal("flush did not release")
	}
	buf := make([]byte, 16)
	_ = b.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, _, err := b.ReadFrom(buf)
	if err != nil || string(buf[:n]) != "held" {
		t.Fatalf("released datagram: %q, %v", buf[:n], err)
	}
}

func TestChaosConnTransparentByDefault(t *testing.T) {
	a, _ := net.ListenPacket("udp", "127.0.0.1:0")
	b, _ := net.ListenPacket("udp", "127.0.0.1:0")
	defer b.Close()
	c := NewChaosConn(a, ChaosConfig{})
	defer c.Close()
	if _, err := c.WriteTo([]byte("pass"), b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	_ = b.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, _, err := b.ReadFrom(buf)
	if err != nil || string(buf[:n]) != "pass" {
		t.Fatalf("got %q, %v", buf[:n], err)
	}
	if c.LocalAddr() == nil {
		t.Fatal("LocalAddr delegation broken")
	}
	if err := c.SetDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetReadDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetWriteDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
}

func TestReceiverSurvivesGarbageDatagrams(t *testing.T) {
	pair, err := NewLoopbackPair(protocol.NewSeqNum(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pair.Close()

	// Blast undecodable garbage straight at the receiver's socket.
	g, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	raddr := pair.Receiver.conn.LocalAddr()
	for i := 0; i < 20; i++ {
		if _, err := g.WriteTo([]byte{0xff, 0xff, 0xff, 0x00, byte(i)}, raddr); err != nil {
			t.Fatal(err)
		}
	}
	// Real traffic still goes through.
	want := sendAll(t, pair, 5)
	got := collect(t, pair.Receiver.Out(), len(want))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivered %v, want %v", got, want)
		}
	}
}

func TestSenderSurvivesGarbageAcks(t *testing.T) {
	pair, err := NewLoopbackPair(protocol.NewSeqNum(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pair.Close()
	g, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	saddr := pair.Sender.conn.LocalAddr()
	for i := 0; i < 20; i++ {
		if _, err := g.WriteTo([]byte{0x80, 0x80}, saddr); err != nil {
			t.Fatal(err)
		}
	}
	want := sendAll(t, pair, 5)
	got := collect(t, pair.Receiver.Out(), len(want))
	if len(got) != len(want) {
		t.Fatalf("delivered %v", got)
	}
}

func TestNoGoroutineLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		pair, err := NewLoopbackPair(protocol.NewSeqNum(), nil)
		if err != nil {
			t.Fatal(err)
		}
		_ = sendAll(t, pair, 2)
		collect(t, pair.Receiver.Out(), 2)
		if err := pair.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// Allow the runtime a moment to reap exited goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}
