package netlink

import (
	"math/rand"
	"net"
	"sync"
	"time"
)

// ChaosConn wraps a net.PacketConn with seeded, deterministic loss and
// reordering on the *write* side: the non-FIFO physical layer of the paper,
// imposed on a real socket.
//
//   - With probability DropProb a written datagram is silently discarded
//     (an arbitrary delay that never ends).
//   - With probability HoldProb a written datagram is held back; a held
//     datagram is released after a later write, i.e. it overtakes —
//     reordering, the non-FIFO behaviour.
//
// Reads are passed through untouched, so wrapping both endpoints of a path
// perturbs both directions. The zero value of ChaosConfig is a transparent
// wrapper.
type ChaosConn struct {
	inner net.PacketConn
	cfg   ChaosConfig

	mu   sync.Mutex
	rng  *rand.Rand
	held []heldPacket
}

// ChaosConfig parameterises a ChaosConn.
type ChaosConfig struct {
	// DropProb is the probability a written datagram is lost.
	DropProb float64
	// HoldProb is the probability a written datagram is delayed behind a
	// later one (reordering).
	HoldProb float64
	// MaxHeld bounds the hold queue; beyond it datagrams pass through.
	// Defaults to 32.
	MaxHeld int
	// Seed makes the chaos deterministic.
	Seed int64
}

type heldPacket struct {
	b    []byte
	addr net.Addr
}

var _ net.PacketConn = (*ChaosConn)(nil)

// NewChaosConn wraps inner with the given chaos configuration.
func NewChaosConn(inner net.PacketConn, cfg ChaosConfig) *ChaosConn {
	if cfg.MaxHeld == 0 {
		cfg.MaxHeld = 32
	}
	return &ChaosConn{
		inner: inner,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
}

// WriteTo applies the loss/reorder discipline, then writes.
func (c *ChaosConn) WriteTo(b []byte, addr net.Addr) (int, error) {
	c.mu.Lock()
	roll := c.rng.Float64()
	hold := false
	var release *heldPacket
	switch {
	case roll < c.cfg.DropProb:
		c.mu.Unlock()
		return len(b), nil // swallowed: an unbounded delay
	case roll < c.cfg.DropProb+c.cfg.HoldProb && len(c.held) < c.cfg.MaxHeld:
		cp := make([]byte, len(b))
		copy(cp, b)
		c.held = append(c.held, heldPacket{b: cp, addr: addr})
		hold = true
	default:
		// Passing through; maybe also release one held datagram behind
		// this one (it has now been overtaken — reordering realised).
		if len(c.held) > 0 && c.rng.Float64() < 0.5 {
			release = &c.held[0]
			c.held = c.held[1:]
		}
	}
	c.mu.Unlock()

	if hold {
		return len(b), nil
	}
	n, err := c.inner.WriteTo(b, addr)
	if err != nil {
		return n, err
	}
	if release != nil {
		_, _ = c.inner.WriteTo(release.b, release.addr)
	}
	return n, nil
}

// FlushHeld releases every held datagram (stale copies arriving at last).
func (c *ChaosConn) FlushHeld() {
	c.mu.Lock()
	held := c.held
	c.held = nil
	c.mu.Unlock()
	for _, h := range held {
		_, _ = c.inner.WriteTo(h.b, h.addr)
	}
}

// HeldCount reports the datagrams currently delayed.
func (c *ChaosConn) HeldCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.held)
}

// ReadFrom delegates to the wrapped socket.
func (c *ChaosConn) ReadFrom(b []byte) (int, net.Addr, error) { return c.inner.ReadFrom(b) }

// Close delegates to the wrapped socket.
func (c *ChaosConn) Close() error { return c.inner.Close() }

// LocalAddr delegates to the wrapped socket.
func (c *ChaosConn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// SetDeadline delegates to the wrapped socket.
func (c *ChaosConn) SetDeadline(t time.Time) error { return c.inner.SetDeadline(t) }

// SetReadDeadline delegates to the wrapped socket.
func (c *ChaosConn) SetReadDeadline(t time.Time) error { return c.inner.SetReadDeadline(t) }

// SetWriteDeadline delegates to the wrapped socket.
func (c *ChaosConn) SetWriteDeadline(t time.Time) error { return c.inner.SetWriteDeadline(t) }
