package netlink

import (
	"math/rand"
	"net"
	"sync"
	"time"
)

// ChaosConn wraps a net.PacketConn with seeded, deterministic loss,
// reordering and duplication on the *write* side: the non-FIFO physical
// layer of the paper, imposed on a real socket.
//
//   - With probability DropProb a written datagram is silently discarded
//     (an arbitrary delay that never ends).
//   - With probability HoldProb a written datagram is held back; a held
//     datagram is released after a later write, i.e. it overtakes —
//     reordering, the non-FIFO behaviour.
//   - With probability DupProb a written datagram passes through AND a copy
//     is held for later release — duplication, realised as a stale copy
//     arriving behind fresher traffic.
//
// Reads are passed through untouched, so wrapping both endpoints of a path
// perturbs both directions. The zero value of ChaosConfig is a transparent
// wrapper.
//
// The free-running stations (Sender/Receiver) use the net.PacketConn face
// and never learn a datagram's fate. The lock-step soak sessions
// (session.go) use WriteOutcome instead: the per-write fate report is what
// lets them lift every chaos outcome into the simulator's recorded
// decision/stale-delivery vocabulary, which is what makes live soak traces
// replayable.
type ChaosConn struct {
	inner net.PacketConn
	cfg   ChaosConfig

	mu   sync.Mutex
	rng  *rand.Rand
	held []heldPacket
}

// ChaosConfig parameterises a ChaosConn.
type ChaosConfig struct {
	// DropProb is the probability a written datagram is lost.
	DropProb float64
	// HoldProb is the probability a written datagram is delayed behind a
	// later one (reordering).
	HoldProb float64
	// DupProb is the probability a written datagram is delivered AND a
	// copy of it is held for later release (duplication).
	DupProb float64
	// MaxHeld bounds the hold queue; beyond it datagrams pass through.
	// Defaults to 32.
	MaxHeld int
	// Seed makes the chaos deterministic.
	Seed int64
}

type heldPacket struct {
	b    []byte
	addr net.Addr
}

// WriteFate is the fate a ChaosConn assigned to one written datagram.
type WriteFate uint8

const (
	// FatePassed: the datagram was written through to the wire.
	FatePassed WriteFate = iota
	// FateDropped: the datagram was silently discarded.
	FateDropped
	// FateHeld: the datagram was held back for later release.
	FateHeld
	// FateDup: the datagram was written through AND a copy was held.
	FateDup
)

// String renders the fate for diagnostics.
func (f WriteFate) String() string {
	switch f {
	case FatePassed:
		return "passed"
	case FateDropped:
		return "dropped"
	case FateHeld:
		return "held"
	case FateDup:
		return "dup"
	default:
		return "fate(?)"
	}
}

// WriteResult reports what a ChaosConn did with one written datagram.
type WriteResult struct {
	// Fate is the written datagram's own fate.
	Fate WriteFate
	// Released holds the raw bytes of previously held datagrams written to
	// the wire *behind* this one (their overtaking realised). At most one
	// per write under the current release discipline.
	Released [][]byte
}

var _ net.PacketConn = (*ChaosConn)(nil)

// NewChaosConn wraps inner with the given chaos configuration.
func NewChaosConn(inner net.PacketConn, cfg ChaosConfig) *ChaosConn {
	if cfg.MaxHeld == 0 {
		cfg.MaxHeld = 32
	}
	return &ChaosConn{
		inner: inner,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
}

// WriteTo applies the loss/reorder/duplication discipline, then writes.
func (c *ChaosConn) WriteTo(b []byte, addr net.Addr) (int, error) {
	_, err := c.WriteOutcome(b, addr)
	return len(b), err
}

// WriteOutcome is WriteTo with a fate report: it applies the chaos
// discipline and tells the caller exactly what happened — the datagram's own
// fate plus any held datagrams released behind it. The lock-step soak
// sessions depend on the report to mirror the wire into the simulator's
// replayable vocabulary (pass → deliver, drop → drop, held → delay,
// release → stale delivery).
func (c *ChaosConn) WriteOutcome(b []byte, addr net.Addr) (WriteResult, error) {
	c.mu.Lock()
	roll := c.rng.Float64()
	var res WriteResult
	var release, dupCopy *heldPacket
	p := c.cfg.DropProb
	switch {
	case roll < p:
		c.mu.Unlock()
		res.Fate = FateDropped
		return res, nil // swallowed: an unbounded delay
	case roll < p+c.cfg.HoldProb && len(c.held) < c.cfg.MaxHeld:
		cp := make([]byte, len(b))
		copy(cp, b)
		c.held = append(c.held, heldPacket{b: cp, addr: addr})
		res.Fate = FateHeld
	default:
		res.Fate = FatePassed
		// Passing through; maybe also release one held datagram behind
		// this one (it has now been overtaken — reordering realised). The
		// release roll precedes the dup copy's enqueue so a duplicate is
		// never released behind its own original write.
		if len(c.held) > 0 && c.rng.Float64() < 0.5 {
			release = &c.held[0]
			c.held = c.held[1:]
		}
		if roll < p+c.cfg.HoldProb+c.cfg.DupProb && len(c.held) < c.cfg.MaxHeld {
			cp := make([]byte, len(b))
			copy(cp, b)
			dupCopy = &heldPacket{b: cp, addr: addr}
			res.Fate = FateDup
		}
	}
	if dupCopy != nil {
		c.held = append(c.held, *dupCopy)
	}
	c.mu.Unlock()

	if res.Fate == FateHeld {
		return res, nil
	}
	if _, err := c.inner.WriteTo(b, addr); err != nil {
		return res, err
	}
	if release != nil {
		res.Released = append(res.Released, release.b)
		_, _ = c.inner.WriteTo(release.b, release.addr)
	}
	return res, nil
}

// ReleaseOne pops the oldest held datagram and writes it to the wire,
// returning its raw bytes. The soak sessions use it to force progress when
// the transmitter is stuck waiting on a delayed copy, and to drain the hold
// queue at session end (every stale copy arrives at last). ok is false when
// nothing is held.
func (c *ChaosConn) ReleaseOne() (b []byte, ok bool) {
	c.mu.Lock()
	if len(c.held) == 0 {
		c.mu.Unlock()
		return nil, false
	}
	h := c.held[0]
	c.held = c.held[1:]
	c.mu.Unlock()
	_, _ = c.inner.WriteTo(h.b, h.addr)
	return h.b, true
}

// Preload appends a datagram to the hold queue without writing anything: it
// has been "in transit since before time 0". The soak sessions use it to
// realise the stabilization adversary's poison move on a real wire; the
// preloaded copy is subsequently released through the ordinary
// ReleaseOne/overtaking paths. It reports false when the hold queue is full.
func (c *ChaosConn) Preload(b []byte, addr net.Addr) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.held) >= c.cfg.MaxHeld {
		return false
	}
	cp := make([]byte, len(b))
	copy(cp, b)
	c.held = append(c.held, heldPacket{b: cp, addr: addr})
	return true
}

// FlushHeld releases every held datagram (stale copies arriving at last).
func (c *ChaosConn) FlushHeld() {
	c.mu.Lock()
	held := c.held
	c.held = nil
	c.mu.Unlock()
	for _, h := range held {
		_, _ = c.inner.WriteTo(h.b, h.addr)
	}
}

// HeldCount reports the datagrams currently delayed.
func (c *ChaosConn) HeldCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.held)
}

// ReadFrom delegates to the wrapped socket.
func (c *ChaosConn) ReadFrom(b []byte) (int, net.Addr, error) { return c.inner.ReadFrom(b) }

// Close delegates to the wrapped socket.
func (c *ChaosConn) Close() error { return c.inner.Close() }

// LocalAddr delegates to the wrapped socket.
func (c *ChaosConn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// SetDeadline delegates to the wrapped socket.
func (c *ChaosConn) SetDeadline(t time.Time) error { return c.inner.SetDeadline(t) }

// SetReadDeadline delegates to the wrapped socket.
func (c *ChaosConn) SetReadDeadline(t time.Time) error { return c.inner.SetReadDeadline(t) }

// SetWriteDeadline delegates to the wrapped socket.
func (c *ChaosConn) SetWriteDeadline(t time.Time) error { return c.inner.SetWriteDeadline(t) }
