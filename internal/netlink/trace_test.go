package netlink

import (
	"net"
	"testing"
	"time"

	"repro/internal/ioa"
	"repro/internal/protocol"
	"repro/internal/replay"
	"repro/internal/trace"
)

// TestRecordedSessionOverChaos records a real two-goroutine UDP session
// under seeded loss and reordering into one combined log, and checks the
// log against the paper's properties: because both stations emit sends
// before the datagram hits the socket, the interleaved log is causally
// ordered and PL1/DL1/DL2 must hold on its projection.
func TestRecordedSessionOverChaos(t *testing.T) {
	l := trace.NewLog(nil)
	seed := int64(7)
	wrap := func(c net.PacketConn) net.PacketConn {
		seed++
		return NewChaosConn(c, ChaosConfig{DropProb: 0.2, HoldProb: 0.2, Seed: seed})
	}
	pair, err := NewRecordedLoopbackPair(protocol.NewSeqNum(), wrap, l,
		WithResendInterval(500*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	want := sendAll(t, pair, n)
	got := collect(t, pair.Receiver.Out(), n)
	if err := pair.Close(); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivered %v, want %v", got, want)
		}
	}

	if l.Meta[trace.MetaProtocol] != "seqnum" || l.Meta[trace.MetaKind] != "netlink" {
		t.Fatalf("session meta = %v", l.Meta)
	}
	s := trace.Collect(l)
	if s.Messages != n || s.Deliveries != n {
		t.Fatalf("session log: %d submits, %d deliveries, want %d each", s.Messages, s.Deliveries, n)
	}
	if s.DataSends < n || s.DataRecvs < 1 || s.AckSends < 1 || s.AckRecvs < 1 {
		t.Fatalf("implausible traffic counts: %+v", s)
	}
	// The chaos channel drops datagrams, so receives never exceed sends.
	if s.DataRecvs > s.DataSends || s.AckRecvs > s.AckSends {
		t.Fatalf("more receives than sends: %+v", s)
	}
	if err := ioa.CheckSafety(l.IOATrace()); err != nil {
		t.Fatalf("recorded session violates safety: %v", err)
	}

	// Observational recordings must be refused by the replayer.
	if _, err := replay.Run(l); err == nil {
		t.Fatal("replayer accepted a netlink session log")
	}

	// And they round-trip through the trace codec like any other log.
	path := t.TempDir() + "/session.nft"
	if err := trace.WriteFile(path, l); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != l.Len() {
		t.Fatalf("codec round trip lost events: %d vs %d", back.Len(), l.Len())
	}
}
