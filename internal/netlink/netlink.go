// Package netlink runs the repo's data link protocols over real datagram
// sockets — the paper's model meeting an actual non-FIFO transport.
//
// A UDP path is precisely the physical layer of Section 2.1: datagrams may
// be lost or reordered, never corrupted (checksummed) and never duplicated
// end-to-end by this package. The Sender drives a protocol.Transmitter and
// the Receiver drives a protocol.Receiver, each from a single event-loop
// goroutine (the endpoint automata are deliberately single-threaded);
// retransmission is paced by a resend ticker, which stands in for the
// simulator's step scheduling.
//
// Only protocols that need no channel genie are usable here — seqnum,
// altbit, and the unbounded transport variants. That is not a limitation of
// this package but the paper's conclusion restated: over a real non-FIFO
// channel, a bounded-header protocol would need exactly the unavailable
// global knowledge the genie models, so one pays the Θ(n) headers instead.
//
// ChaosConn wraps any net.PacketConn with seeded, deterministic loss and
// reordering, so the adversarial channel behaviours of the simulator can be
// reproduced over the socket API in tests.
package netlink

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/protocol"
	"repro/internal/wire"
)

// ErrClosed is returned by operations on a closed station.
var ErrClosed = errors.New("netlink: station closed")

// ErrFlushTimeout is returned when Flush's deadline expires before every
// submitted message is confirmed.
var ErrFlushTimeout = errors.New("netlink: flush timeout")

// DefaultResendInterval paces retransmissions when no option overrides it.
const DefaultResendInterval = 2 * time.Millisecond

// SenderOption configures a Sender.
type SenderOption func(*Sender)

// WithResendInterval overrides the retransmission pacing.
func WithResendInterval(d time.Duration) SenderOption {
	return func(s *Sender) {
		if d > 0 {
			s.resendEvery = d
		}
	}
}

// Sender drives a protocol transmitter over a datagram socket.
type Sender struct {
	conn        net.PacketConn
	remote      net.Addr
	resendEvery time.Duration

	submit   chan string
	flushReq chan chan struct{}
	incoming chan []byte

	stop     chan struct{}
	loopDone chan struct{}
	readDone chan struct{}

	closeOnce sync.Once
}

// NewSender starts a sender for protocol p on conn, talking to remote.
// Close releases it (and closes conn).
func NewSender(p protocol.Protocol, conn net.PacketConn, remote net.Addr, opts ...SenderOption) *Sender {
	t, _ := p.New(nil, nil)
	s := &Sender{
		conn:        conn,
		remote:      remote,
		resendEvery: DefaultResendInterval,
		submit:      make(chan string),
		flushReq:    make(chan chan struct{}),
		incoming:    make(chan []byte, 64),
		stop:        make(chan struct{}),
		loopDone:    make(chan struct{}),
		readDone:    make(chan struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	go s.readLoop()
	go s.loop(t)
	return s
}

// Send enqueues one message for reliable delivery. It never blocks on the
// network, only on handing the payload to the event loop.
func (s *Sender) Send(payload string) error {
	select {
	case s.submit <- payload:
		return nil
	case <-s.stop:
		return ErrClosed
	}
}

// Flush blocks until every message submitted so far is confirmed delivered,
// or the timeout expires.
func (s *Sender) Flush(timeout time.Duration) error {
	done := make(chan struct{})
	select {
	case s.flushReq <- done:
	case <-s.stop:
		return ErrClosed
	}
	select {
	case <-done:
		return nil
	case <-time.After(timeout):
		return ErrFlushTimeout
	case <-s.stop:
		return ErrClosed
	}
}

// Close stops the sender's goroutines and closes the socket.
func (s *Sender) Close() error {
	s.closeOnce.Do(func() {
		close(s.stop)
		_ = s.conn.Close() // unblocks the read loop
		<-s.readDone
		<-s.loopDone
	})
	return nil
}

func (s *Sender) readLoop() {
	defer close(s.readDone)
	buf := make([]byte, 64<<10)
	for {
		n, _, err := s.conn.ReadFrom(buf)
		if err != nil {
			return // closed or fatal; the event loop continues on ticker
		}
		b := make([]byte, n)
		copy(b, buf[:n])
		select {
		case s.incoming <- b:
		case <-s.stop:
			return
		}
	}
}

// loop owns the transmitter automaton; nothing else may touch it.
func (s *Sender) loop(t protocol.Transmitter) {
	defer close(s.loopDone)
	ticker := time.NewTicker(s.resendEvery)
	defer ticker.Stop()

	var waiters []chan struct{}
	notify := func() {
		if t.Busy() {
			return
		}
		for _, w := range waiters {
			close(w)
		}
		waiters = nil
	}
	transmit := func() {
		if p, ok := t.NextPkt(); ok {
			_, _ = s.conn.WriteTo(wire.Encode(p), s.remote)
		}
	}

	for {
		select {
		case <-s.stop:
			return
		case payload := <-s.submit:
			t.SendMsg(payload)
			transmit() // fast path: first copy goes out immediately
		case b := <-s.incoming:
			pkt, err := wire.Decode(b)
			if err != nil {
				continue // corrupt datagram; the model assumes none, reality disagrees
			}
			t.DeliverPkt(pkt)
			notify()
			transmit()
		case <-ticker.C:
			transmit() // retransmission pacing
		case w := <-s.flushReq:
			waiters = append(waiters, w)
			notify()
		}
	}
}

// Receiver drives a protocol receiver over a datagram socket and delivers
// payloads on a channel.
type Receiver struct {
	conn net.PacketConn
	out  chan string

	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// NewReceiver starts a receiver for protocol p on conn. Delivered payloads
// appear on Out() in order; the consumer must drain it. Close releases the
// station (and closes conn).
func NewReceiver(p protocol.Protocol, conn net.PacketConn) *Receiver {
	_, r := p.New(nil, nil)
	rc := &Receiver{
		conn: conn,
		out:  make(chan string, 128),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go rc.loop(r)
	return rc
}

// Out returns the in-order stream of delivered payloads.
func (rc *Receiver) Out() <-chan string { return rc.out }

// Close stops the receiver and closes the socket.
func (rc *Receiver) Close() error {
	rc.closeOnce.Do(func() {
		close(rc.stop)
		_ = rc.conn.Close()
		<-rc.done
	})
	return nil
}

// loop owns the receiver automaton. It is read-driven: every arriving
// datagram is handed to the automaton, acknowledgements are written back to
// the datagram's source, and deliveries go to the output channel.
func (rc *Receiver) loop(r protocol.Receiver) {
	defer close(rc.done)
	defer close(rc.out)
	buf := make([]byte, 64<<10)
	for {
		n, src, err := rc.conn.ReadFrom(buf)
		if err != nil {
			return // closed
		}
		pkt, err := wire.Decode(buf[:n])
		if err != nil {
			continue
		}
		r.DeliverPkt(pkt)
		for {
			ack, ok := r.NextPkt()
			if !ok {
				break
			}
			_, _ = rc.conn.WriteTo(wire.Encode(ack), src)
		}
		for _, payload := range r.TakeDelivered() {
			select {
			case rc.out <- payload:
			case <-rc.stop:
				return
			}
		}
	}
}

// Pair is a convenience for tests and examples: a sender/receiver pair
// wired over fresh loopback UDP sockets.
type Pair struct {
	Sender   *Sender
	Receiver *Receiver
}

// NewLoopbackPair binds two UDP sockets on 127.0.0.1 and connects a sender
// for protocol p to a receiver for the same protocol. wrap, if non-nil,
// wraps each socket (e.g. in a ChaosConn) before use.
func NewLoopbackPair(p protocol.Protocol, wrap func(net.PacketConn) net.PacketConn, opts ...SenderOption) (*Pair, error) {
	rConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("netlink: receiver socket: %w", err)
	}
	sConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		_ = rConn.Close()
		return nil, fmt.Errorf("netlink: sender socket: %w", err)
	}
	remote := rConn.LocalAddr()
	if wrap != nil {
		rConn = wrap(rConn)
		sConn = wrap(sConn)
	}
	return &Pair{
		Sender:   NewSender(p, sConn, remote, opts...),
		Receiver: NewReceiver(p, rConn),
	}, nil
}

// Close releases both stations.
func (p *Pair) Close() error {
	err1 := p.Sender.Close()
	err2 := p.Receiver.Close()
	if err1 != nil {
		return err1
	}
	return err2
}
