// Package netlink runs the repo's data link protocols over real datagram
// sockets — the paper's model meeting an actual non-FIFO transport.
//
// A UDP path is precisely the physical layer of Section 2.1: datagrams may
// be lost or reordered, never corrupted (checksummed) and never duplicated
// end-to-end by this package. The Sender drives a protocol.Transmitter and
// the Receiver drives a protocol.Receiver, each from a single event-loop
// goroutine (the endpoint automata are deliberately single-threaded);
// retransmission is paced by a resend ticker, which stands in for the
// simulator's step scheduling.
//
// Only protocols that need no channel genie are usable here — seqnum,
// altbit, and the unbounded transport variants. That is not a limitation of
// this package but the paper's conclusion restated: over a real non-FIFO
// channel, a bounded-header protocol would need exactly the unavailable
// global knowledge the genie models, so one pays the Θ(n) headers instead.
//
// ChaosConn wraps any net.PacketConn with seeded, deterministic loss and
// reordering, so the adversarial channel behaviours of the simulator can be
// reproduced over the socket API in tests.
package netlink

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/ioa"
	"repro/internal/protocol"
	"repro/internal/trace"
	"repro/internal/wire"
)

// ErrClosed is returned by operations on a closed station.
var ErrClosed = errors.New("netlink: station closed")

// ErrFlushTimeout is returned when Flush's deadline expires before every
// submitted message is confirmed.
var ErrFlushTimeout = errors.New("netlink: flush timeout")

// DefaultResendInterval paces retransmissions when no option overrides it.
const DefaultResendInterval = 2 * time.Millisecond

// SenderOption configures a Sender.
type SenderOption func(*Sender)

// WithResendInterval overrides the retransmission pacing.
func WithResendInterval(d time.Duration) SenderOption {
	return func(s *Sender) {
		if d > 0 {
			s.resendEvery = d
		}
	}
}

// WithTraceSink makes the sender log its externally visible actions
// (message submissions, data packet writes, ack arrivals) to sink. Events
// are emitted from the event-loop goroutine, and writes are logged *before*
// they hit the socket, so a combined two-station log (see
// NewRecordedLoopbackPair) is ordered consistently with causality. Netlink
// traces are observational — a record of what a real network session did —
// not re-drivable by internal/replay, which owns both ends of a simulated
// run.
func WithTraceSink(sink trace.Sink) SenderOption {
	return func(s *Sender) { s.sink = sink }
}

// ReceiverOption configures a Receiver.
type ReceiverOption func(*Receiver)

// WithReceiverTraceSink is WithTraceSink for the receiving station: data
// packet arrivals, ack writes and payload deliveries are logged to sink.
func WithReceiverTraceSink(sink trace.Sink) ReceiverOption {
	return func(rc *Receiver) { rc.sink = sink }
}

// Sender drives a protocol transmitter over a datagram socket.
type Sender struct {
	conn        net.PacketConn
	remote      net.Addr
	resendEvery time.Duration
	sink        trace.Sink

	submit   chan string
	flushReq chan chan struct{}
	incoming chan []byte

	stop     chan struct{}
	loopDone chan struct{}
	readDone chan struct{}

	closeOnce sync.Once
}

// NewSender starts a sender for protocol p on conn, talking to remote.
// Close releases it (and closes conn).
func NewSender(p protocol.Protocol, conn net.PacketConn, remote net.Addr, opts ...SenderOption) *Sender {
	t, _ := p.New(nil, nil)
	s := &Sender{
		conn:        conn,
		remote:      remote,
		resendEvery: DefaultResendInterval,
		submit:      make(chan string),
		flushReq:    make(chan chan struct{}),
		incoming:    make(chan []byte, 64),
		stop:        make(chan struct{}),
		loopDone:    make(chan struct{}),
		readDone:    make(chan struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	go s.readLoop()
	go s.loop(t)
	return s
}

// Send enqueues one message for reliable delivery. It never blocks on the
// network, only on handing the payload to the event loop.
func (s *Sender) Send(payload string) error {
	select {
	case s.submit <- payload:
		return nil
	case <-s.stop:
		return ErrClosed
	}
}

// Flush blocks until every message submitted so far is confirmed delivered,
// or the timeout expires.
func (s *Sender) Flush(timeout time.Duration) error {
	done := make(chan struct{})
	select {
	case s.flushReq <- done:
	case <-s.stop:
		return ErrClosed
	}
	select {
	case <-done:
		return nil
	case <-time.After(timeout):
		return ErrFlushTimeout
	case <-s.stop:
		return ErrClosed
	}
}

// Close stops the sender's goroutines and closes the socket.
func (s *Sender) Close() error {
	s.closeOnce.Do(func() {
		close(s.stop)
		_ = s.conn.Close() // unblocks the read loop
		<-s.readDone
		<-s.loopDone
	})
	return nil
}

func (s *Sender) readLoop() {
	defer close(s.readDone)
	buf := make([]byte, 64<<10)
	for {
		n, _, err := s.conn.ReadFrom(buf)
		if err != nil {
			return // closed or fatal; the event loop continues on ticker
		}
		b := make([]byte, n)
		copy(b, buf[:n])
		select {
		case s.incoming <- b:
		case <-s.stop:
			return
		}
	}
}

// loop owns the transmitter automaton; nothing else may touch it.
func (s *Sender) loop(t protocol.Transmitter) {
	defer close(s.loopDone)
	ticker := time.NewTicker(s.resendEvery)
	defer ticker.Stop()

	var waiters []chan struct{}
	submitted := 0
	notify := func() {
		if t.Busy() {
			return
		}
		for _, w := range waiters {
			close(w)
		}
		waiters = nil
	}
	transmit := func() {
		if p, ok := t.NextPkt(); ok {
			if s.sink != nil {
				// Log before the write so the combined session log orders
				// this send before the peer's receive.
				s.sink.Emit(trace.Event{Kind: trace.KindSendPkt, Dir: ioa.TtoR, Pkt: p})
			}
			_, _ = s.conn.WriteTo(wire.Encode(p), s.remote)
		}
	}

	for {
		select {
		case <-s.stop:
			return
		case payload := <-s.submit:
			if s.sink != nil {
				s.sink.Emit(trace.Event{Kind: trace.KindSubmit, Msg: ioa.Message{ID: submitted, Payload: payload}})
			}
			submitted++
			t.SendMsg(payload)
			transmit() // fast path: first copy goes out immediately
		case b := <-s.incoming:
			pkt, err := wire.Decode(b)
			if err != nil {
				continue // corrupt datagram; the model assumes none, reality disagrees
			}
			if s.sink != nil {
				s.sink.Emit(trace.Event{Kind: trace.KindRecvPkt, Dir: ioa.RtoT, Pkt: pkt})
			}
			t.DeliverPkt(pkt)
			notify()
			transmit()
		case <-ticker.C:
			transmit() // retransmission pacing
		case w := <-s.flushReq:
			waiters = append(waiters, w)
			notify()
		}
	}
}

// Receiver drives a protocol receiver over a datagram socket and delivers
// payloads on a channel.
type Receiver struct {
	conn      net.PacketConn
	out       chan string
	sink      trace.Sink
	delivered int // receive_msg counter for trace bookkeeping IDs

	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// NewReceiver starts a receiver for protocol p on conn. Delivered payloads
// appear on Out() in order; the consumer must drain it. Close releases the
// station (and closes conn).
func NewReceiver(p protocol.Protocol, conn net.PacketConn, opts ...ReceiverOption) *Receiver {
	_, r := p.New(nil, nil)
	rc := &Receiver{
		conn: conn,
		out:  make(chan string, 128),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	for _, o := range opts {
		o(rc)
	}
	go rc.loop(r)
	return rc
}

// Out returns the in-order stream of delivered payloads.
func (rc *Receiver) Out() <-chan string { return rc.out }

// Close stops the receiver and closes the socket.
func (rc *Receiver) Close() error {
	rc.closeOnce.Do(func() {
		close(rc.stop)
		_ = rc.conn.Close()
		<-rc.done
	})
	return nil
}

// loop owns the receiver automaton. It is read-driven: every arriving
// datagram is handed to the automaton, acknowledgements are written back to
// the datagram's source, and deliveries go to the output channel.
func (rc *Receiver) loop(r protocol.Receiver) {
	defer close(rc.done)
	defer close(rc.out)
	buf := make([]byte, 64<<10)
	for {
		n, src, err := rc.conn.ReadFrom(buf)
		if err != nil {
			return // closed
		}
		pkt, err := wire.Decode(buf[:n])
		if err != nil {
			continue
		}
		if rc.sink != nil {
			rc.sink.Emit(trace.Event{Kind: trace.KindRecvPkt, Dir: ioa.TtoR, Pkt: pkt})
		}
		r.DeliverPkt(pkt)
		for {
			ack, ok := r.NextPkt()
			if !ok {
				break
			}
			if rc.sink != nil {
				rc.sink.Emit(trace.Event{Kind: trace.KindSendPkt, Dir: ioa.RtoT, Pkt: ack})
			}
			_, _ = rc.conn.WriteTo(wire.Encode(ack), src)
		}
		for _, payload := range r.TakeDelivered() {
			if rc.sink != nil {
				rc.sink.Emit(trace.Event{Kind: trace.KindRecvMsg, Msg: ioa.Message{ID: rc.delivered, Payload: payload}})
			}
			rc.delivered++
			select {
			case rc.out <- payload:
			case <-rc.stop:
				return
			}
		}
	}
}

// Pair is a convenience for tests and examples: a sender/receiver pair
// wired over fresh loopback UDP sockets.
type Pair struct {
	Sender   *Sender
	Receiver *Receiver
}

// NewLoopbackPair binds two UDP sockets on 127.0.0.1 and connects a sender
// for protocol p to a receiver for the same protocol. wrap, if non-nil,
// wraps each socket (e.g. in a ChaosConn) before use.
func NewLoopbackPair(p protocol.Protocol, wrap func(net.PacketConn) net.PacketConn, opts ...SenderOption) (*Pair, error) {
	rConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("netlink: receiver socket: %w", err)
	}
	sConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		_ = rConn.Close()
		return nil, fmt.Errorf("netlink: sender socket: %w", err)
	}
	remote := rConn.LocalAddr()
	if wrap != nil {
		rConn = wrap(rConn)
		sConn = wrap(sConn)
	}
	return &Pair{
		Sender:   NewSender(p, sConn, remote, opts...),
		Receiver: NewReceiver(p, rConn),
	}, nil
}

// NewRecordedLoopbackPair is NewLoopbackPair with both stations logging
// into l through one synchronized sink, producing a single combined session
// log. Both stations emit sends before the datagram hits the socket, so the
// interleaved log is ordered consistently with causality and satisfies PL1;
// the trace is stamped kind "netlink" (observational — internal/replay
// refuses to re-drive it, since only one side's nondeterminism was ours).
func NewRecordedLoopbackPair(p protocol.Protocol, wrap func(net.PacketConn) net.PacketConn, l *trace.Log, opts ...SenderOption) (*Pair, error) {
	if l.Meta[trace.MetaProtocol] == "" {
		l.SetMeta(trace.MetaProtocol, p.Name())
	}
	if l.Meta[trace.MetaKind] == "" {
		l.SetMeta(trace.MetaKind, "netlink")
	}
	sink := trace.NewSyncSink(l)

	rConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("netlink: receiver socket: %w", err)
	}
	sConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		_ = rConn.Close()
		return nil, fmt.Errorf("netlink: sender socket: %w", err)
	}
	remote := rConn.LocalAddr()
	if wrap != nil {
		rConn = wrap(rConn)
		sConn = wrap(sConn)
	}
	opts = append(append([]SenderOption(nil), opts...), WithTraceSink(sink))
	return &Pair{
		Sender:   NewSender(p, sConn, remote, opts...),
		Receiver: NewReceiver(p, rConn, WithReceiverTraceSink(sink)),
	}, nil
}

// Close releases both stations.
func (p *Pair) Close() error {
	err1 := p.Sender.Close()
	err2 := p.Receiver.Close()
	if err1 != nil {
		return err1
	}
	return err2
}
