package netlink

// The soak orchestrator: a worker pool driving many lock-step sessions
// through one Server, recording each session's replayable log into a
// sharded trace store and aggregating throughput/latency/violation figures.
// cmd/nfserve's serve and load verbs are thin wrappers around RunSoak.

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/protocol"
	"repro/internal/trace"
)

// SoakConfig describes one soak run.
type SoakConfig struct {
	// Protocols are assigned to sessions round-robin; at least one is
	// required.
	Protocols []protocol.Protocol
	// Sessions is the number of sessions to run; 0 means "until Stop
	// fires" (serve mode) and requires a non-nil Stop.
	Sessions int
	// Messages is the per-session message count. Defaults to 8.
	Messages int
	// Chaos sets the per-direction drop/hold/dup probabilities for every
	// session (seeds are derived per session and direction).
	Chaos ChaosConfig
	// Seed is the root seed; session i runs with
	// core.SplitSeed(Seed, "session/<i>").
	Seed int64
	// Workers bounds concurrently running sessions. Defaults to 16.
	Workers int
	// StepBudget, ReadTimeout and Clock are passed through to each session.
	StepBudget  int
	ReadTimeout time.Duration
	Clock       func() time.Time
	// Store, when non-nil, records every completed session's log under its
	// session name. Zero lost recordings is the soak contract: a Put
	// failure is surfaced as the session's error.
	Store *trace.ShardStore
	// Stop, when non-nil, drains the soak gracefully: no new session starts
	// after it fires, in-flight sessions finish and are recorded.
	Stop <-chan struct{}
	// OnResult, when non-nil, observes each outcome as it completes. It is
	// called from worker goroutines; the callback must be safe for
	// concurrent use.
	OnResult func(SessionOutcome)
}

// SessionName is the shard-store key for soak session id.
func SessionName(id int) string { return fmt.Sprintf("s%06d", id) }

// SessionOutcome summarises one session of a soak run.
type SessionOutcome struct {
	// ID is the session index; Session is its shard-store key.
	ID      int
	Session string
	// Protocol and Seed reproduce the session exactly.
	Protocol string
	Seed     int64
	// Messages and Delivered count send_msg and receive_msg actions.
	Messages, Delivered int
	// Events is the recorded log length.
	Events int
	// Verdict is the violated safety property ("" if safe); DL3 reports a
	// quiescent-liveness miss.
	Verdict string
	DL3     bool
	// Err is a non-empty operational failure (stall, socket error,
	// recording failure).
	Err string
	// Elapsed is the session's wall time through the clock seam.
	Elapsed time.Duration
	// Recorded reports whether the log reached the shard store.
	Recorded bool
}

// SoakReport aggregates a soak run.
type SoakReport struct {
	// Sessions counts sessions started; Completed those without an
	// operational error; Skipped those never started because Stop fired.
	Sessions, Completed, Skipped int
	// Violations counts sessions with a safety verdict; DL3 those with a
	// liveness miss; Errors those with an operational failure.
	Violations, DL3, Errors int
	// Recorded counts logs persisted to the shard store.
	Recorded int
	// Messages and Deliveries aggregate across sessions.
	Messages, Deliveries int
	// Elapsed is the whole run; Throughput is delivered messages per
	// second.
	Elapsed    time.Duration
	Throughput float64
	// LatP50/LatP95/LatMax summarise per-message submit→confirm latency
	// across every session.
	LatP50, LatP95, LatMax time.Duration
	// Outcomes lists every started session, ordered by ID.
	Outcomes []SessionOutcome
}

// RunSoak drives the configured soak through the server's mux and returns
// the aggregated report.
func (sv *Server) RunSoak(cfg SoakConfig) (*SoakReport, error) {
	if len(cfg.Protocols) == 0 {
		return nil, errors.New("netlink: soak needs at least one protocol")
	}
	if cfg.Sessions <= 0 && cfg.Stop == nil {
		return nil, errors.New("netlink: soak needs a session count or a stop channel")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 16
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now // see SessionConfig.Clock: reported timing only
	}

	start := clock()
	ids := make(chan int)
	skipped := make(chan int, 1)
	go func() {
		defer close(ids)
		for i := 0; cfg.Sessions <= 0 || i < cfg.Sessions; i++ {
			select {
			case <-cfg.Stop: // nil channel when Stop is unset: never fires
				if cfg.Sessions > 0 {
					skipped <- cfg.Sessions - i
				} else {
					skipped <- 0
				}
				return
			case ids <- i:
			}
		}
		skipped <- 0
	}()

	var (
		mu       sync.Mutex
		outcomes []SessionOutcome
		lats     []time.Duration
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := range ids {
				out, sessionLats := sv.runSoakSession(cfg, id)
				mu.Lock()
				outcomes = append(outcomes, out)
				lats = append(lats, sessionLats...)
				mu.Unlock()
				if cfg.OnResult != nil {
					cfg.OnResult(out)
				}
			}
		}()
	}
	wg.Wait()

	rep := &SoakReport{Skipped: <-skipped, Elapsed: clock().Sub(start)}
	sort.Slice(outcomes, func(i, j int) bool { return outcomes[i].ID < outcomes[j].ID })
	rep.Outcomes = outcomes
	for _, o := range outcomes {
		rep.Sessions++
		rep.Messages += o.Messages
		rep.Deliveries += o.Delivered
		switch {
		case o.Err != "":
			rep.Errors++
		default:
			rep.Completed++
		}
		if o.Verdict != "" {
			rep.Violations++
		}
		if o.DL3 {
			rep.DL3++
		}
		if o.Recorded {
			rep.Recorded++
		}
	}
	if secs := rep.Elapsed.Seconds(); secs > 0 {
		rep.Throughput = float64(rep.Deliveries) / secs
	}
	rep.LatP50, rep.LatP95, rep.LatMax = latencySummary(lats)
	return rep, nil
}

// runSoakSession runs session id with its derived seed and round-robin
// protocol, records the log, and flattens the result into an outcome.
func (sv *Server) runSoakSession(cfg SoakConfig, id int) (SessionOutcome, []time.Duration) {
	p := cfg.Protocols[id%len(cfg.Protocols)]
	scfg := SessionConfig{
		Protocol:    p,
		Messages:    cfg.Messages,
		Chaos:       cfg.Chaos,
		Seed:        core.SplitSeed(cfg.Seed, "session/"+strconv.Itoa(id)),
		StepBudget:  cfg.StepBudget,
		ReadTimeout: cfg.ReadTimeout,
		Clock:       cfg.Clock,
	}
	out := SessionOutcome{ID: id, Session: SessionName(id), Protocol: p.Name(), Seed: scfg.Seed}
	res, err := sv.RunSession(scfg)
	if err != nil {
		out.Err = err.Error()
		return out, nil
	}
	out.Messages = res.Stats.Messages
	out.Delivered = res.Stats.Delivered
	out.Events = res.Log.Len()
	out.Elapsed = res.Stats.Elapsed
	if res.Verdict != nil {
		out.Verdict = res.Verdict.Property
	}
	out.DL3 = res.DL3 != nil
	if res.Err != nil {
		out.Err = res.Err.Error()
	}
	if cfg.Store != nil {
		if _, perr := cfg.Store.Put(out.Session, res.Log); perr != nil {
			if out.Err == "" {
				out.Err = perr.Error()
			}
		} else {
			out.Recorded = true
		}
	}
	return out, res.Stats.Latencies
}

// latencySummary reports the p50/p95/max of the given durations (zeros when
// empty). The input is sorted in place.
func latencySummary(lats []time.Duration) (p50, p95, max time.Duration) {
	if len(lats) == 0 {
		return 0, 0, 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	q := func(f float64) time.Duration {
		i := int(f * float64(len(lats)-1))
		return lats[i]
	}
	return q(0.50), q(0.95), lats[len(lats)-1]
}
