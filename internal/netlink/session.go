package netlink

// Lock-step soak sessions: replayable data-link runs over real UDP.
//
// The free-running stations in netlink.go produce observational traces —
// they record what a real network session did, but internal/replay cannot
// re-drive them, because the wire's nondeterminism was never captured in the
// simulator's vocabulary. A Session closes that gap. It wraps a sim.Runner
// whose channel policies consult reality: every send does a real UDP wire
// round trip through a seeded ChaosConn, and the chaos outcome is lifted
// back into the model's recorded decision/stale-delivery vocabulary:
//
//	chaos drop            → recorded Drop decision
//	chaos hold            → recorded Delay decision (the model copy stays in
//	                        transit, exactly where the real datagram is)
//	pass, arrived         → recorded DeliverNow decision
//	pass, lost on wire    → recorded Drop decision (wire loss is loss)
//	release of a held/dup → recorded DeliverStale op, once the released
//	                        datagram actually arrives
//
// The session IS a simulator run whose channel behaviour happens to be
// decided by a real socket, so its trace — stamped kind "soak" — is
// operation- and decision-complete: internal/replay re-drives it bit for
// bit, the checkers re-judge it, and the shrinker minimises a misbehaving
// live session into a replayable certificate. That is the repo's
// replay-from-production loop.
//
// Duplication (FateDup) has no multiset counterpart — a non-FIFO channel of
// the paper never duplicates — so a released duplicate is lifted as a stale
// delivery only when the model still has a copy of that value in transit
// (copies are indistinguishable, so this is sound); otherwise the arrival is
// filtered and counted. The lift is count-conserving: the model never
// delivers more copies than it holds, preserving PL1 by construction.
//
// Timing: all recorded/reported timing (latency stats) flows through the
// Clock seam; nothing clock-derived enters the NFT log, so two runs with the
// same seed produce byte-identical traces regardless of scheduling. Socket
// read deadlines are failure detectors, not semantics — on loopback, a
// lock-step session never has more datagrams in flight than one write burst,
// so the deadline only fires on genuine loss (and then becomes a recorded
// Drop, keeping the trace replayable anyway).

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"time"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/ioa"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/wire"
)

// SoakTraceKind is the trace.MetaKind value stamped on lock-step session
// logs. Unlike the observational "netlink" kind, "soak" traces are
// operation- and decision-complete and internal/replay re-drives them.
const SoakTraceKind = "soak"

// ErrSessionStalled is wrapped by session errors when the transmitter stops
// making progress and no held datagram remains to force-release: an
// operational liveness (DL3) failure observed on a live wire.
var ErrSessionStalled = errors.New("netlink: session stalled")

// DefaultSessionReadTimeout bounds one blocking wire read. It is a failure
// detector: on loopback the expected datagrams of a lock-step round trip
// arrive in microseconds, so the timeout fires only on genuine loss.
const DefaultSessionReadTimeout = 2 * time.Second

// SessionConfig describes one lock-step soak session.
type SessionConfig struct {
	// Protocol selects the data link protocol to run.
	Protocol protocol.Protocol
	// Messages is the number of messages to deliver. Defaults to 8.
	Messages int
	// Payload generates the i-th message payload. Defaults to "msg-<i>".
	Payload func(i int) string
	// Chaos sets the drop/hold/dup probabilities applied independently to
	// each direction. The Seed field is ignored; per-direction chaos seeds
	// are derived from Seed below.
	Chaos ChaosConfig
	// Seed makes the whole session deterministic: the two ChaosConn seeds
	// are core.SplitSeed(Seed, "soak/data") and core.SplitSeed(Seed,
	// "soak/ack").
	Seed int64
	// StepBudget bounds transmitter steps per message (each step is a wire
	// round trip). Defaults to 1 << 12.
	StepBudget int
	// CorruptT/CorruptR select corrupted start states from the protocol's
	// declared corruption space (protocol.Corruptible); zero is the clean
	// start. Stabilize specimens soak from adversarial starts this way.
	CorruptT, CorruptR int
	// Clock is the timing seam for latency stats; defaults to time.Now.
	// Clock readings never enter the NFT log.
	Clock func() time.Time
	// ReadTimeout bounds one blocking wire read. Defaults to
	// DefaultSessionReadTimeout.
	ReadTimeout time.Duration
}

func (c SessionConfig) withDefaults() SessionConfig {
	if c.Messages == 0 {
		c.Messages = 8
	}
	if c.Payload == nil {
		c.Payload = func(i int) string { return "msg-" + strconv.Itoa(i) }
	}
	if c.StepBudget == 0 {
		c.StepBudget = 1 << 12
	}
	if c.Clock == nil {
		// internal/netlink is outside the wallclock lint's deterministic set:
		// sessions touch real sockets, so ambient time is part of the job.
		// The seam exists so reported timing is overridable, and because
		// nothing clock-derived may enter the NFT log.
		c.Clock = time.Now
	}
	if c.ReadTimeout == 0 {
		c.ReadTimeout = DefaultSessionReadTimeout
	}
	return c
}

// SessionStats are the per-session wire and chaos counters.
type SessionStats struct {
	// Messages and Delivered count send_msg and receive_msg actions.
	Messages, Delivered int
	// ChaosDrops/ChaosHolds/ChaosDups count the chaos fates dealt to writes
	// across both directions.
	ChaosDrops, ChaosHolds, ChaosDups int
	// StaleLifted counts released datagrams lifted into the model as
	// DeliverStale operations.
	StaleLifted int
	// WireFiltered counts arrivals with no in-transit model copy (duplicate
	// residue and late stragglers), absorbed without a model move.
	WireFiltered int
	// WireLost counts passed writes whose datagram missed the arrival
	// window; each became a recorded Drop decision.
	WireLost int
	// ForcedReleases counts held datagrams force-released to unstick the
	// transmitter.
	ForcedReleases int
	// Latencies holds each message's submit→confirm duration, measured
	// through the Clock seam.
	Latencies []time.Duration
	// Elapsed is the whole session's duration.
	Elapsed time.Duration
}

// SessionResult is the outcome of one soak session.
type SessionResult struct {
	// Log is the replayable NFT event log, kind "soak", with a verdict
	// event appended (safety violation wins over DL3, clean otherwise).
	Log *trace.Log
	// Stats are the wire and chaos counters.
	Stats SessionStats
	// Verdict is the safety check over the session's trace (PL1 both
	// directions, DL1, DL2); nil if safe.
	Verdict *ioa.Violation
	// DL3 is the quiescent-liveness check; nil when every submitted message
	// was delivered.
	DL3 *ioa.Violation
	// Err is non-nil if the session failed operationally (stall, socket
	// error). The partial log remains replayable.
	Err error
}

// sessionEnv is the wiring a session drives: the two chaos-wrapped write
// paths and the matching read paths. RunLoopbackSession builds a standalone
// two-socket env; Server builds a mux-backed one.
type sessionEnv struct {
	dataChaos *ChaosConn // wraps the client socket; data pkts → dataAddr
	ackChaos  *ChaosConn // wraps the server writer; acks → ackAddr
	dataAddr  net.Addr   // the server (receiver-side) address
	ackAddr   net.Addr   // the client (transmitter-side) address
	recvData  func(timeout time.Duration) ([]byte, bool)
	recvAck   func(timeout time.Duration) ([]byte, bool)
	close     func()
}

type pendingStale struct {
	dir ioa.Dir
	pkt ioa.Packet
}

// session is the lock-step driver; it lives on one goroutine.
type session struct {
	cfg     SessionConfig
	env     *sessionEnv
	runner  *sim.Runner
	pending []pendingStale
	stats   SessionStats
	ioErr   error
}

// RunLoopbackSession runs one lock-step soak session over a fresh pair of
// loopback UDP sockets.
func RunLoopbackSession(cfg SessionConfig) (*SessionResult, error) {
	serverConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("netlink: server socket: %w", err)
	}
	clientConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		_ = serverConn.Close()
		return nil, fmt.Errorf("netlink: client socket: %w", err)
	}
	cfg = cfg.withDefaults()
	env := &sessionEnv{
		dataChaos: NewChaosConn(clientConn, chaosFor(cfg, "soak/data")),
		ackChaos:  NewChaosConn(serverConn, chaosFor(cfg, "soak/ack")),
		dataAddr:  serverConn.LocalAddr(),
		ackAddr:   clientConn.LocalAddr(),
		recvData:  deadlineReader(serverConn, cfg.Clock),
		recvAck:   deadlineReader(clientConn, cfg.Clock),
		close: func() {
			_ = clientConn.Close()
			_ = serverConn.Close()
		},
	}
	return runSession(cfg, env), nil
}

// chaosFor derives one direction's chaos configuration: the probabilities
// from cfg.Chaos, the seed split from the session seed by stream name.
func chaosFor(cfg SessionConfig, stream string) ChaosConfig {
	cc := cfg.Chaos
	cc.Seed = core.SplitSeed(cfg.Seed, stream)
	return cc
}

// deadlineReader returns a single-goroutine blocking read function over
// conn. The buffer is reused across calls; each returned datagram is copied
// out.
func deadlineReader(conn net.PacketConn, clock func() time.Time) func(time.Duration) ([]byte, bool) {
	buf := make([]byte, 64<<10)
	return func(d time.Duration) ([]byte, bool) {
		_ = conn.SetReadDeadline(clock().Add(d))
		n, _, err := conn.ReadFrom(buf)
		if err != nil {
			return nil, false
		}
		b := make([]byte, n)
		copy(b, buf[:n])
		return b, true
	}
}

// runSession drives one session to completion over env and always closes it.
func runSession(cfg SessionConfig, env *sessionEnv) *SessionResult {
	cfg = cfg.withDefaults()
	defer env.close()

	s := &session{cfg: cfg, env: env}
	log := trace.NewLog(nil)
	log.SetMeta(trace.MetaKind, SoakTraceKind)
	log.SetMeta(trace.MetaSource, "netlink")
	s.runner = sim.NewRunner(sim.Config{
		Protocol:    cfg.Protocol,
		DataPolicy:  channel.PolicyFunc(func(p ioa.Packet) channel.Decision { return s.onSend(ioa.TtoR, p) }),
		AckPolicy:   channel.PolicyFunc(func(p ioa.Packet) channel.Decision { return s.onSend(ioa.RtoT, p) }),
		StepBudget:  cfg.StepBudget,
		Payload:     cfg.Payload,
		RecordTrace: true,
		TraceLog:    log,
	})

	res := &SessionResult{Log: log}
	if cfg.CorruptT != 0 || cfg.CorruptR != 0 {
		if err := s.runner.CorruptStart(cfg.CorruptT, cfg.CorruptR); err != nil {
			res.Err = err
			res.Stats = s.stats
			return res
		}
	}

	start := cfg.Clock()
	for i := 0; i < cfg.Messages && res.Err == nil; i++ {
		mstart := cfg.Clock()
		s.runner.SubmitMsg(cfg.Payload(i))
		s.stats.Messages++
		res.Err = s.runToIdle()
		s.stats.Latencies = append(s.stats.Latencies, cfg.Clock().Sub(mstart))
	}
	if res.Err == nil {
		s.finalDrain()
	}
	s.stats.Elapsed = cfg.Clock().Sub(start)
	s.stats.Delivered = len(s.runner.Delivered())

	run := s.runner.Result()
	if err := ioa.CheckSafety(run.Trace); err != nil {
		res.Verdict, _ = ioa.AsViolation(err)
	}
	if err := ioa.CheckDL3Quiescent(run.Trace); err != nil {
		res.DL3, _ = ioa.AsViolation(err)
	}
	// Stamp the verdict the way replay does: safety wins (it is the stronger
	// finding), else the liveness miss, else clean.
	ve := trace.Event{Kind: trace.KindVerdict}
	switch {
	case res.Verdict != nil:
		ve.Property, ve.Index, ve.Detail = res.Verdict.Property, res.Verdict.Index, res.Verdict.Detail
	case res.DL3 != nil:
		ve.Property, ve.Index, ve.Detail = res.DL3.Property, res.DL3.Index, res.DL3.Detail
	}
	log.Emit(ve)
	res.Stats = s.stats
	return res
}

// runToIdle steps the runner until the transmitter confirms every accepted
// message, lifting wire arrivals between operations and force-releasing held
// datagrams when the transmitter is stuck waiting on one.
func (s *session) runToIdle() error {
	for steps := 0; s.runner.T.Busy(); steps++ {
		if steps >= s.cfg.StepBudget {
			return fmt.Errorf("%w after %d steps (protocol %s)", ErrSessionStalled, steps, s.cfg.Protocol.Name())
		}
		progressed := s.runner.StepTransmit()
		s.liftPending()
		s.runner.DrainAcks()
		s.liftPending()
		if s.ioErr != nil {
			return s.ioErr
		}
		if !progressed && s.runner.T.Busy() {
			// The transmitter has no enabled output: it is waiting on a
			// datagram the chaos layer is holding. Force one onto the wire;
			// if nothing is held anywhere, the session is truly stuck.
			if !s.forceRelease() {
				return fmt.Errorf("%w: transmitter waiting with nothing held", ErrSessionStalled)
			}
		}
	}
	return nil
}

// onSend is the wire policy: the channel-policy seam where the model
// consults reality. It performs the real write, waits for the arrivals the
// chaos outcome promises, and renders the outcome as the recorded decision.
func (s *session) onSend(dir ioa.Dir, p ioa.Packet) channel.Decision {
	conn, addr, recv := s.env.dataChaos, s.env.dataAddr, s.env.recvData
	if dir == ioa.RtoT {
		conn, addr, recv = s.env.ackChaos, s.env.ackAddr, s.env.recvAck
	}
	res, err := conn.WriteOutcome(wire.Encode(p), addr)
	if err != nil {
		// Socket failure: the datagram never made the wire. Drop is the
		// truthful decision; the error aborts the session after this op.
		s.ioErr = err
		return channel.Drop
	}
	switch res.Fate {
	case FateDropped:
		s.stats.ChaosDrops++
		return channel.Drop
	case FateHeld:
		s.stats.ChaosHolds++
		return channel.Delay
	case FateDup:
		s.stats.ChaosDups++
	}
	// Passed (possibly duplicated): the datagram and any released held
	// copies are on the wire. Read them back; copies are matched by value
	// (multiset semantics), so kernel arrival order cannot matter.
	delivered := false
	for i := 0; i < 1+len(res.Released); i++ {
		b, ok := recv(s.cfg.ReadTimeout)
		if !ok {
			break // lost or late; a straggler surfaces in a later window
		}
		q, err := wire.Decode(b)
		if err != nil {
			s.stats.WireFiltered++
			continue
		}
		if !delivered && q == p {
			delivered = true
			continue
		}
		s.pending = append(s.pending, pendingStale{dir: dir, pkt: q})
	}
	if !delivered {
		s.stats.WireLost++
		return channel.Drop
	}
	return channel.DeliverNow
}

// liftPending mirrors arrived released datagrams into the model as stale
// deliveries. An arrival with no in-transit model copy (duplicate residue, a
// straggler whose copy was already dropped) is filtered: the model never
// delivers a copy it does not hold.
func (s *session) liftPending() {
	for len(s.pending) > 0 {
		ps := s.pending[0]
		s.pending = s.pending[1:]
		ch := s.runner.ChData
		if ps.dir == ioa.RtoT {
			ch = s.runner.ChAck
		}
		if ch.Count(ps.pkt) == 0 {
			s.stats.WireFiltered++
			continue
		}
		if err := s.runner.DeliverStale(ps.dir, ps.pkt); err != nil {
			s.stats.WireFiltered++
			continue
		}
		s.stats.StaleLifted++
	}
}

// forceRelease puts one held datagram on the wire — acks first, since a
// stuck transmitter is usually waiting for one — reads it back and lifts it.
// It reports whether anything was held.
func (s *session) forceRelease() bool {
	type lane struct {
		conn *ChaosConn
		dir  ioa.Dir
		recv func(time.Duration) ([]byte, bool)
	}
	for _, ln := range []lane{
		{s.env.ackChaos, ioa.RtoT, s.env.recvAck},
		{s.env.dataChaos, ioa.TtoR, s.env.recvData},
	} {
		if _, ok := ln.conn.ReleaseOne(); !ok {
			continue
		}
		s.stats.ForcedReleases++
		if b, ok := ln.recv(s.cfg.ReadTimeout); ok {
			if q, err := wire.Decode(b); err == nil {
				s.pending = append(s.pending, pendingStale{dir: ln.dir, pkt: q})
			} else {
				s.stats.WireFiltered++
			}
		}
		s.liftPending()
		return true
	}
	return false
}

// finalDrain releases every datagram still held by the chaos layer after the
// last message confirms: the stale copies arrive at last, which is exactly
// when a bounded protocol's DL1 violations surface (an old copy re-accepted
// as new). Releases write directly to the wire (no chaos re-roll), so the
// drain strictly empties the hold queues.
func (s *session) finalDrain() {
	for {
		released := false
		for _, ln := range []struct {
			conn *ChaosConn
			dir  ioa.Dir
			recv func(time.Duration) ([]byte, bool)
		}{
			{s.env.dataChaos, ioa.TtoR, s.env.recvData},
			{s.env.ackChaos, ioa.RtoT, s.env.recvAck},
		} {
			if _, ok := ln.conn.ReleaseOne(); !ok {
				continue
			}
			released = true
			if b, ok := ln.recv(s.cfg.ReadTimeout); ok {
				if q, err := wire.Decode(b); err == nil {
					s.pending = append(s.pending, pendingStale{dir: ln.dir, pkt: q})
				} else {
					s.stats.WireFiltered++
				}
			}
			s.liftPending()
		}
		if !released {
			return
		}
	}
}
