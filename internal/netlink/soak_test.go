package netlink

import (
	"bytes"
	"sync/atomic"
	"testing"

	"repro/internal/protocol"
	"repro/internal/replay"
	"repro/internal/trace"
)

// runSoakSessionT runs one loopback session and fails the test on transport
// errors (operational protocol errors stay in the result).
func runSoakSessionT(t *testing.T, cfg SessionConfig) *SessionResult {
	t.Helper()
	res, err := RunLoopbackSession(cfg)
	if err != nil {
		t.Fatalf("RunLoopbackSession: %v", err)
	}
	return res
}

func TestSoakSessionCleanWire(t *testing.T) {
	res := runSoakSessionT(t, SessionConfig{
		Protocol: protocol.NewSeqNum(),
		Messages: 6,
		Seed:     1,
	})
	if res.Err != nil {
		t.Fatalf("session error: %v", res.Err)
	}
	if res.Stats.Delivered != 6 {
		t.Fatalf("delivered %d of 6", res.Stats.Delivered)
	}
	if res.Verdict != nil || res.DL3 != nil {
		t.Fatalf("clean wire misjudged: verdict=%v dl3=%v", res.Verdict, res.DL3)
	}
	if got := res.Log.Meta[trace.MetaKind]; got != SoakTraceKind {
		t.Fatalf("log kind %q, want %q", got, SoakTraceKind)
	}
}

func TestSoakSessionReplaysBitForBit(t *testing.T) {
	for _, tc := range []struct {
		name  string
		proto protocol.Protocol
		chaos ChaosConfig
		seed  int64
	}{
		{"seqnum/clean", protocol.NewSeqNum(), ChaosConfig{}, 1},
		{"seqnum/chaos", protocol.NewSeqNum(), ChaosConfig{DropProb: 0.1, HoldProb: 0.2, DupProb: 0.1}, 2},
		{"altbit/chaos", protocol.NewAltBit(), ChaosConfig{DropProb: 0.1, HoldProb: 0.25, DupProb: 0.15}, 3},
		{"cntk4/chaos", protocol.NewCntK(4), ChaosConfig{DropProb: 0.05, HoldProb: 0.3}, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res := runSoakSessionT(t, SessionConfig{
				Protocol: tc.proto,
				Messages: 8,
				Chaos:    tc.chaos,
				Seed:     tc.seed,
			})
			rr, err := replay.Run(res.Log)
			if err != nil {
				t.Fatalf("replay refused soak log: %v", err)
			}
			if rr.Divergence != nil {
				t.Fatalf("replay diverged: %v", rr.Divergence)
			}
			if !rr.VerdictMatches {
				t.Fatalf("verdict mismatch: recorded=%v replayed=%v dl3=%v",
					rr.RecordedVerdict, rr.Verdict, rr.DL3)
			}
		})
	}
}

// TestSoakChaosDeterminism pins the seeded-reproducibility contract the load
// generator depends on: the same seed against the same session configuration
// yields byte-identical NFT logs end-to-end, wire loss included (a lost
// datagram becomes a recorded Drop decision, so even loss cannot fork the
// log across replays — and on loopback lock-step reads it does not occur).
func TestSoakChaosDeterminism(t *testing.T) {
	cfg := SessionConfig{
		Protocol: protocol.NewAltBit(),
		Messages: 10,
		Chaos:    ChaosConfig{DropProb: 0.15, HoldProb: 0.25, DupProb: 0.1},
		Seed:     42,
	}
	encode := func(l *trace.Log) []byte {
		var buf bytes.Buffer
		if err := l.Encode(&buf); err != nil {
			t.Fatalf("encode: %v", err)
		}
		return buf.Bytes()
	}
	a := runSoakSessionT(t, cfg)
	b := runSoakSessionT(t, cfg)
	ab, bb := encode(a.Log), encode(b.Log)
	if !bytes.Equal(ab, bb) {
		t.Fatalf("same seed, different logs:\nrun A (%d events):\n%s\nrun B (%d events):\n%s",
			a.Log.Len(), a.Log, b.Log.Len(), b.Log)
	}
	if a.Stats.ChaosDrops != b.Stats.ChaosDrops || a.Stats.ChaosHolds != b.Stats.ChaosHolds ||
		a.Stats.ChaosDups != b.Stats.ChaosDups || a.Stats.StaleLifted != b.Stats.StaleLifted {
		t.Fatalf("same seed, different chaos stats: %+v vs %+v", a.Stats, b.Stats)
	}
}

// TestSoakViolationShrinksToCertificate is replay-from-production in
// miniature: a live altbit session under hold+dup chaos suffers a DL1
// violation (a stale copy re-accepted after the bit wrapped), and the
// existing oracle-parameterized shrinker minimises the session's recorded
// log into a replay-confirmed certificate.
func TestSoakViolationShrinksToCertificate(t *testing.T) {
	res := runSoakSessionT(t, SessionConfig{
		Protocol: protocol.NewAltBit(),
		Messages: 12,
		Chaos:    ChaosConfig{HoldProb: 0.3, DupProb: 0.2},
		Seed:     1, // pinned: this seed yields a DL1 on a live wire
	})
	if res.Verdict == nil || res.Verdict.Property != "DL1" {
		t.Fatalf("pinned seed produced no DL1; verdict=%v err=%v", res.Verdict, res.Err)
	}
	sr, err := replay.Shrink(res.Log)
	if err != nil {
		t.Fatalf("shrink: %v", err)
	}
	if sr.Property != "DL1" {
		t.Fatalf("shrinker preserved %q, want DL1", sr.Property)
	}
	if sr.FinalEvents >= sr.OriginalEvents {
		t.Fatalf("shrinker made no progress: %d -> %d events", sr.OriginalEvents, sr.FinalEvents)
	}
	// The certificate must be independently replayable and still violating.
	rr, err := replay.Run(sr.Log)
	if err != nil {
		t.Fatalf("replay of certificate: %v", err)
	}
	if rr.Verdict == nil || rr.Verdict.Property != "DL1" {
		t.Fatalf("certificate does not reproduce the DL1: %v", rr.Verdict)
	}
}

// TestSoakCorruptedStart runs a stabilize specimen from an adversarial
// start state over the real wire: the corrupted-start op makes the log a
// v2 NFT trace that still replays bit for bit.
func TestSoakCorruptedStart(t *testing.T) {
	res := runSoakSessionT(t, SessionConfig{
		Protocol: protocol.NewStabDL(2),
		Messages: 6,
		Chaos:    ChaosConfig{HoldProb: 0.2},
		Seed:     7,
		CorruptT: 1,
		CorruptR: 2,
	})
	if res.Err != nil {
		t.Fatalf("session error: %v", res.Err)
	}
	foundCorrupt := false
	for _, e := range res.Log.Events {
		if e.Kind == trace.KindCorrupt {
			foundCorrupt = true
			break
		}
	}
	if !foundCorrupt {
		t.Fatal("corrupted-start session log carries no KindCorrupt op")
	}
	rr, err := replay.Run(res.Log)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if rr.Divergence != nil {
		t.Fatalf("replay diverged: %v", rr.Divergence)
	}
}

// TestSoakConcurrentSessionsReplay is the scale satellite: 32+ sessions run
// concurrently through one Server mux over loopback UDP (run it under
// -race), every session's log is recorded into a sharded store with zero
// losses, and every recorded trace replays bit for bit.
func TestSoakConcurrentSessionsReplay(t *testing.T) {
	sv, err := NewServer("")
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer sv.Close()

	dir := t.TempDir()
	store, err := trace.NewShardStore(dir, 4)
	if err != nil {
		t.Fatalf("NewShardStore: %v", err)
	}
	const sessions = 32
	rep, err := sv.RunSoak(SoakConfig{
		Protocols: []protocol.Protocol{protocol.NewSeqNum(), protocol.NewAltBit(), protocol.NewCntK(4)},
		Sessions:  sessions,
		Messages:  4,
		Chaos:     ChaosConfig{DropProb: 0.05, HoldProb: 0.2, DupProb: 0.1},
		Seed:      99,
		Workers:   8,
		Store:     store,
	})
	if err != nil {
		t.Fatalf("RunSoak: %v", err)
	}
	if err := store.Close(); err != nil {
		t.Fatalf("store close: %v", err)
	}
	if rep.Sessions != sessions {
		t.Fatalf("ran %d sessions, want %d", rep.Sessions, sessions)
	}
	if rep.Recorded != sessions {
		t.Fatalf("recorded %d of %d session logs", rep.Recorded, sessions)
	}
	if rep.Errors > 0 {
		for _, o := range rep.Outcomes {
			if o.Err != "" {
				t.Errorf("session %s (%s seed=%d): %s", o.Session, o.Protocol, o.Seed, o.Err)
			}
		}
		t.Fatalf("%d sessions failed operationally", rep.Errors)
	}

	m, err := trace.ReadManifestFile(dir)
	if err != nil {
		t.Fatalf("manifest: %v", err)
	}
	if len(m.Entries) != sessions {
		t.Fatalf("manifest has %d entries, want %d", len(m.Entries), sessions)
	}
	for _, o := range rep.Outcomes {
		l, err := trace.ReadShardLog(dir, m, o.Session)
		if err != nil {
			t.Fatalf("read %s: %v", o.Session, err)
		}
		rr, err := replay.Run(l)
		if err != nil {
			t.Fatalf("replay %s: %v", o.Session, err)
		}
		if rr.Divergence != nil {
			t.Fatalf("session %s (%s seed=%d) diverged on replay: %v",
				o.Session, o.Protocol, o.Seed, rr.Divergence)
		}
		if !rr.VerdictMatches {
			t.Fatalf("session %s verdict mismatch: recorded=%v replayed=%v dl3=%v",
				o.Session, rr.RecordedVerdict, rr.Verdict, rr.DL3)
		}
	}
}

// TestSoakServerSessionMatchesStandalone pins that a mux-backed session and
// a standalone two-socket session with the same seed produce identical logs:
// the transport plumbing must be invisible to the recorded execution.
func TestSoakServerSessionMatchesStandalone(t *testing.T) {
	cfg := SessionConfig{
		Protocol: protocol.NewSeqNum(),
		Messages: 6,
		Chaos:    ChaosConfig{HoldProb: 0.3, DupProb: 0.2},
		Seed:     11,
	}
	standalone := runSoakSessionT(t, cfg)

	sv, err := NewServer("")
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer sv.Close()
	muxed, err := sv.RunSession(cfg)
	if err != nil {
		t.Fatalf("RunSession: %v", err)
	}

	var sb, mb bytes.Buffer
	if err := standalone.Log.Encode(&sb); err != nil {
		t.Fatal(err)
	}
	if err := muxed.Log.Encode(&mb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sb.Bytes(), mb.Bytes()) {
		t.Fatalf("mux changed the recorded execution:\nstandalone:\n%s\nmuxed:\n%s",
			standalone.Log, muxed.Log)
	}
}

// TestSoakGracefulDrain pins serve-mode wind-down: once Stop fires, no new
// session starts, while every in-flight session finishes and is recorded.
func TestSoakGracefulDrain(t *testing.T) {
	sv, err := NewServer("")
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer sv.Close()

	stop := make(chan struct{})
	var done atomic.Int64
	rep, err := sv.RunSoak(SoakConfig{
		Protocols: []protocol.Protocol{protocol.NewSeqNum()},
		Sessions:  1000,
		Messages:  2,
		Seed:      5,
		Workers:   4,
		OnResult: func(SessionOutcome) {
			if done.Add(1) == 8 {
				close(stop)
			}
		},
		Stop: stop,
	})
	if err != nil {
		t.Fatalf("RunSoak: %v", err)
	}
	if rep.Sessions >= 1000 {
		t.Fatalf("drain did not stop admissions: %d sessions ran", rep.Sessions)
	}
	if rep.Sessions+rep.Skipped != 1000 {
		t.Fatalf("sessions %d + skipped %d != 1000", rep.Sessions, rep.Skipped)
	}
	if rep.Errors > 0 {
		t.Fatalf("%d in-flight sessions failed during drain", rep.Errors)
	}
}
