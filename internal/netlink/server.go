package netlink

// Server is the soak server's listener mux: ONE UDP socket is the
// receiver-side endpoint of every concurrent session. A read pump routes
// arriving datagrams to per-session inboxes by source address (each session
// owns a distinct client socket, so the source address identifies it), and
// acknowledgements are written back through the shared socket (UDP WriteTo
// is goroutine-safe). This is what lets `nfserve load -sessions 1000` run on
// a bounded file-descriptor budget: the peak socket count is the worker pool
// size plus one, not the session count.

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// inboxDepth bounds one session's routed-datagram queue. A lock-step
// session never has more than a handful of datagrams in flight, so the
// bound only matters for stragglers; an overflowing datagram is dropped,
// which surfaces as ordinary recorded wire loss.
const inboxDepth = 256

// Server runs concurrent soak sessions behind one shared UDP socket.
type Server struct {
	conn net.PacketConn

	mu      sync.Mutex
	inboxes map[string]chan []byte

	pumpDone  chan struct{}
	closeOnce sync.Once
}

// NewServer binds the shared socket (addr defaults to "127.0.0.1:0") and
// starts the read pump.
func NewServer(addr string) (*Server, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	conn, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("netlink: server socket: %w", err)
	}
	sv := &Server{
		conn:     conn,
		inboxes:  make(map[string]chan []byte),
		pumpDone: make(chan struct{}),
	}
	go sv.pump()
	return sv, nil
}

// Addr reports the shared socket's address.
func (sv *Server) Addr() net.Addr { return sv.conn.LocalAddr() }

// Close shuts the shared socket down and waits for the pump to exit.
// Sessions still running observe wire loss (recorded Drop decisions) and
// wind down through their own step budgets; drain a soak before closing.
func (sv *Server) Close() error {
	sv.closeOnce.Do(func() {
		_ = sv.conn.Close()
		<-sv.pumpDone
	})
	return nil
}

// pump routes every datagram arriving at the shared socket to the inbox
// registered for its source address. Datagrams from unknown sources (a
// session that already finished) and inbox overflows are dropped — both
// surface as ordinary wire loss to the affected session.
func (sv *Server) pump() {
	defer close(sv.pumpDone)
	buf := make([]byte, 64<<10)
	for {
		n, src, err := sv.conn.ReadFrom(buf)
		if err != nil {
			return // closed
		}
		b := make([]byte, n)
		copy(b, buf[:n])
		sv.mu.Lock()
		inbox := sv.inboxes[src.String()]
		sv.mu.Unlock()
		if inbox == nil {
			continue
		}
		select {
		case inbox <- b:
		default:
		}
	}
}

func (sv *Server) register(key string) chan []byte {
	inbox := make(chan []byte, inboxDepth)
	sv.mu.Lock()
	sv.inboxes[key] = inbox
	sv.mu.Unlock()
	return inbox
}

func (sv *Server) unregister(key string) {
	sv.mu.Lock()
	delete(sv.inboxes, key)
	sv.mu.Unlock()
}

// RunSession runs one lock-step soak session against the shared socket: the
// session's transmitter station gets a fresh client socket, its
// receiver-side wire is the mux. Blocks until the session completes; safe to
// call from many goroutines (the worker pool does).
func (sv *Server) RunSession(cfg SessionConfig) (*SessionResult, error) {
	cfg = cfg.withDefaults()
	clientConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("netlink: client socket: %w", err)
	}
	key := clientConn.LocalAddr().String()
	inbox := sv.register(key)
	env := &sessionEnv{
		dataChaos: NewChaosConn(clientConn, chaosFor(cfg, "soak/data")),
		// The ack lane writes through the SHARED socket; env.close must not
		// close it, so only the client socket is released here.
		ackChaos: NewChaosConn(sv.conn, chaosFor(cfg, "soak/ack")),
		dataAddr: sv.conn.LocalAddr(),
		ackAddr:  clientConn.LocalAddr(),
		recvData: inboxReader(inbox),
		recvAck:  deadlineReader(clientConn, cfg.Clock),
		close: func() {
			sv.unregister(key)
			_ = clientConn.Close()
		},
	}
	return runSession(cfg, env), nil
}

// inboxReader adapts a mux inbox to the session's blocking-read shape,
// reusing one timer across calls (sessions read thousands of times).
func inboxReader(inbox <-chan []byte) func(time.Duration) ([]byte, bool) {
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	return func(d time.Duration) ([]byte, bool) {
		timer.Reset(d)
		select {
		case b := <-inbox:
			if !timer.Stop() {
				<-timer.C
			}
			return b, true
		case <-timer.C:
			return nil, false
		}
	}
}
