package fuzz

import (
	"testing"

	"repro/internal/replay"
	"repro/internal/transport"
)

// TestTransportSmoke is the adapted-transport fuzz smoke: a short
// deterministic campaign against each unbounded-sequence-space transport
// variant (the safe ones — finite S is genuinely breakable, per Theorem 3.1
// extended to the transport layer) must execute its full budget from benign
// seeds with no DL1/safety violation and no codec panic. The corpus round-
// trips through CorpusDir, exercising the input codec on every promoted
// entry.
func TestTransportSmoke(t *testing.T) {
	for _, name := range []string{"swindow-unbounded-w2", "gbn-unbounded-w2"} {
		t.Run(name, func(t *testing.T) {
			proto, err := replay.LookupProtocol(name)
			if err != nil {
				t.Fatalf("LookupProtocol: %v", err)
			}
			if _, ok := proto.(transport.Adapted); !ok {
				t.Fatalf("LookupProtocol(%q) = %T, want the adapted transport form", name, proto)
			}
			res, err := Run(Config{
				Protocol:  proto,
				Workers:   1,
				Budget:    1500,
				Seed:      1,
				CorpusDir: t.TempDir(),
				OutDir:    t.TempDir(),
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res.Execs < 1500 {
				t.Fatalf("campaign executed %d of 1500 budget", res.Execs)
			}
			if len(res.Violations) != 0 {
				t.Fatalf("unbounded %s violated safety under fuzzing: %v", name, res.Violations)
			}
			t.Logf("%s: %d execs, corpus %d, coverage %d", name, res.Execs, res.CorpusSize, res.CoveragePoints)
		})
	}
}

// TestTransportFuzzFindsWrapAlias is the positive control for the smoke
// test: the finite-sequence-space sliding window (s=4, w=2) is breakable —
// a delayed s0 copy aliases sequence 4 after wrap — and the fuzzer must
// rediscover that DL1 from the same benign seeds, certificate included.
func TestTransportFuzzFindsWrapAlias(t *testing.T) {
	res := runCampaign(t, transport.MustAdapt(transport.New(4, 2)), "DL1", 60000)
	t.Logf("swindow-s4-w2 DL1 found after %d execs, corpus %d, coverage %d",
		res.Execs, res.CorpusSize, res.CoveragePoints)
}
