package fuzz

import (
	"testing"
	"time"

	"repro/internal/protocol"
)

// TestWorkerPoolScaling measures campaign throughput at 1, 2 and 4 workers
// over a fixed budget and logs execs/sec for each — the verification run
// behind EXPERIMENTS.md's worker-scaling table (ROADMAP's open item: the
// near-linear-scaling claim was unverifiable on the original 1-CPU build
// host). It is a measurement, not a benchmark race: the test only asserts
// that every pool size consumes its full budget on the sound cntlinear
// protocol with zero violations, and that throughput does not collapse
// (>5x regression) as workers are added — catching a pool that serializes
// on a hot lock. Skipped in -short; run with `go test -run
// TestWorkerPoolScaling -v ./internal/fuzz` to reproduce the numbers.
func TestWorkerPoolScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second throughput measurement; skipped in -short")
	}
	const budget = 8000
	rates := make(map[int]float64)
	for _, w := range []int{1, 2, 4} {
		start := time.Now()
		res, err := Run(Config{
			Protocol: protocol.NewCntLinear(),
			Workers:  w,
			Budget:   budget,
			Seed:     1,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		elapsed := time.Since(start)
		if res.Execs < budget {
			t.Fatalf("workers=%d: executed %d of %d budget", w, res.Execs, budget)
		}
		if len(res.Violations) != 0 {
			t.Fatalf("workers=%d: cntlinear violated safety: %v", w, res.Violations)
		}
		rates[w] = float64(res.Execs) / elapsed.Seconds()
		t.Logf("workers=%d: %d execs in %v = %.0f execs/sec", w, res.Execs, elapsed.Round(time.Millisecond), rates[w])
	}
	for _, w := range []int{2, 4} {
		if rates[w] < rates[1]/5 {
			t.Errorf("workers=%d throughput %.0f execs/sec is >5x below serial %.0f — pool overhead dominates",
				w, rates[w], rates[1])
		}
	}
}
