package fuzz

import (
	"strconv"

	"repro/internal/channel"
	"repro/internal/ioa"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/stabilize"
	"repro/internal/trace"
)

// Core is the interned execution engine: an Execute with the same observable
// phenotype (coverage points, verdicts, logs — the differential harness in
// internal/simdiff holds the two equal) built for throughput. Where Execute
// allocates a runner per input, renders two StateKey strings per operation
// and re-scans the recorded trace with the batch checkers, a Core:
//
//   - pools one sim.Runner and resets it per input, recycling the channel
//     multisets, recorder and metrics slices;
//   - renders the joint state key into one reused scratch buffer
//     (protocol.KeyAppender) and caches the coverage hash midstate per joint
//     key — the per-operation coverage point costs one map probe and three
//     FNV steps instead of building and hashing both key strings;
//   - judges clean runs with an incremental ioa.LiveChecker monitor instead
//     of recording a trace and re-walking it per property.
//
// Corrupted-start inputs keep the recorded-trace path: the amnesty judge
// consumes an ioa.Trace, and corruption is the cold path by construction
// (one in three candidates at most). A Core is protocol-bound and not safe
// for concurrent use; campaigns run one per worker.
type Core struct {
	proto protocol.Protocol
	pair  map[string]uint64 // "tkey\0rkey" -> FNV midstate over those bytes
	run   *sim.Runner       // pooled across executions; nil until first use
	check *ioa.LiveChecker
	dpol  channel.DecisionReplayer // data policy, rebound per execution
	apol  channel.DecisionReplayer // ack policy, rebound per execution
	jbuf  []byte                   // scratch for the rendered joint key

	// Adjacency cache: the coverage point (pre-salt) last computed and the
	// runner version it was computed at. Schedules are full of unproductive
	// operations — drains with no pending acks, transmits while idle, stale
	// picks on empty channels — and sim.Runner.Version() is unchanged across
	// them, so the point is reused without rendering a single key byte.
	lastVer uint64
	lastPt  uint64
	ptValid bool
}

// NewCore returns an execution core for proto.
func NewCore(proto protocol.Protocol) *Core {
	return &Core{
		proto: proto,
		pair:  make(map[string]uint64),
		check: ioa.NewLiveChecker(),
	}
}

// Execute drives one input and reports coverage and verdicts, exactly as the
// package-level Execute does — same points, same verdicts, same log — via
// the interned fast path.
func (c *Core) Execute(in *Input, withLog bool) *ExecResult {
	res := &ExecResult{Points: make([]uint64, 0, len(in.Ops))}

	var tlog *trace.Log
	if withLog {
		tlog = trace.NewLog(map[string]string{trace.MetaSource: "fuzz"})
	}
	corrupt := in.Corrupt != nil
	c.dpol.Bind(in.Data, channel.Delay, &res.DataUsed)
	c.apol.Bind(in.Ack, channel.Delay, &res.AckUsed)
	cfg := sim.Config{
		Protocol:   c.proto,
		DataPolicy: &c.dpol,
		AckPolicy:  &c.apol,
		// The amnesty judge consumes a materialised trace; clean runs are
		// judged by the live checker and need none.
		RecordTrace: corrupt,
		TraceLog:    tlog,
	}
	if !corrupt {
		c.check.Reset()
		cfg.Monitor = c.check
	}
	if c.run == nil {
		c.run = sim.NewRunner(cfg)
	} else {
		c.run.Reset(cfg)
	}
	r := c.run

	var salt uint64
	if corrupt {
		res.Corruption = resolveCorruption(c.proto, in.Corrupt)
		res.Amnesty = stabilize.Amnesty(res.Corruption, CorruptOccupancy)
		salt = corruptSalt(res.Corruption)
		if err := stabilize.Apply(r, res.Corruption); err != nil {
			// Unreachable: resolution reduces every pick into the declared
			// space and the runner has not executed an operation yet.
			return res
		}
	}

	// stabilize.Apply mutates endpoints and channels without runner events,
	// so the adjacency cache must not survive into a fresh execution.
	c.ptValid = false

	submits := 0
	for _, op := range in.Ops {
		switch op.Kind {
		case OpSubmit:
			r.SubmitMsg("m" + strconv.Itoa(submits))
			submits++
		case OpTransmit:
			r.StepTransmit()
		case OpDrain:
			r.DrainAcks()
		case OpStale:
			ch := r.ChData
			if op.Dir == ioa.RtoT {
				ch = r.ChAck
			}
			n := ch.DistinctPackets()
			if n == 0 {
				continue
			}
			p := ch.PacketAt(int(op.Pick) % n)
			if err := r.DeliverStale(op.Dir, p); err != nil {
				// Unreachable: the pick came from the live in-transit set.
				continue
			}
			res.StaleHits++
		}
		res.Points = append(res.Points, c.point(r)^salt)
	}

	if corrupt {
		run := r.Result()
		j := stabilize.JudgeTrace(run.Trace, res.Amnesty)
		res.Verdict, res.Charges = j.Violation, j.Charges
		if j.Violation == nil {
			q := stabilize.JudgeQuiescent(run.Trace, res.Amnesty)
			res.DL3, res.Charges = q.Violation, q.Charges
		}
	} else {
		if err := c.check.Safety(); err != nil {
			res.Verdict, _ = ioa.AsViolation(err)
		}
		if err := c.check.DL3Quiescent(); err != nil {
			res.DL3, _ = ioa.AsViolation(err)
		}
	}
	if withLog {
		ve := trace.Event{Kind: trace.KindVerdict}
		switch {
		case res.Verdict != nil:
			ve.Property, ve.Index, ve.Detail = res.Verdict.Property, res.Verdict.Index, res.Verdict.Detail
		case res.DL3 != nil:
			ve.Property, ve.Index, ve.Detail = res.DL3.Property, res.DL3.Index, res.DL3.Detail
		}
		tlog.Emit(ve)
		res.Log = tlog
	}
	return res
}

// FNV-64a, inlined so the midstate can be cached mid-stream. The constants
// and update rule are hash/fnv's; cover.go's point() is the reference.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// point computes the coverage point of the runner's current joint
// configuration, bit-identical to cover.go's point(r.JointState()).
//
// The string point hashes tkey · 0x00 · rkey · 0x00 · bucket(data) ·
// bucket(ack). FNV-64a consumes bytes strictly left to right, so the hash
// state after tkey · 0x00 · rkey depends only on those bytes — the core
// renders them into one reused scratch buffer, caches the midstate per
// joint key (a no-alloc map[string] probe; the key string is materialised
// once per distinct joint state, on the cache miss), and finishes each
// observation with the three trailing bytes.
func (c *Core) point(r *sim.Runner) uint64 {
	if c.ptValid && r.Version() == c.lastVer {
		return c.lastPt
	}
	b := protocol.AppendStateKeyOf(c.jbuf[:0], r.T)
	b = append(b, 0)
	b = protocol.AppendStateKeyOf(b, r.R)
	c.jbuf = b
	mid, ok := c.pair[string(b)]
	if !ok {
		mid = uint64(fnvOffset64)
		for _, x := range b {
			mid = (mid ^ uint64(x)) * fnvPrime64
		}
		c.pair[string(b)] = mid
	}
	d, a := r.ChData.InTransit(), r.ChAck.InTransit()
	h := (mid ^ 0) * fnvPrime64
	h = (h ^ uint64(byte(occBucket(d)))) * fnvPrime64
	h = (h ^ uint64(byte(occBucket(a)))) * fnvPrime64
	c.lastVer, c.lastPt, c.ptValid = r.Version(), h, true
	return h
}
