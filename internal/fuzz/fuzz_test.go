package fuzz

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/ioa"
	"repro/internal/protocol"
	"repro/internal/replay"
	"repro/internal/trace"
)

func TestInputCodecRoundTrip(t *testing.T) {
	in := &Input{
		Ops: []Op{
			{Kind: OpSubmit},
			{Kind: OpTransmit},
			{Kind: OpStale, Dir: ioa.TtoR, Pick: 3},
			{Kind: OpDrain},
			{Kind: OpStale, Dir: ioa.RtoT, Pick: 250},
		},
		Data: []trace.Decision{trace.Delay, trace.DeliverNow, trace.Drop},
		Ack:  []trace.Decision{trace.DeliverNow},
	}
	out, err := Decode(in.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !bytes.Equal(out.Encode(), in.Encode()) {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("NFZ"),
		[]byte("XXXX\x01\x00\x00\x00"),
		[]byte("NFZI\x03\x00\x00\x00"), // unsupported version
		[]byte("NFZI\x02\x00\x00\x00"), // v2 without its corruption-gene section
		[]byte("NFZI\x01\x01\x09\x00\x00\x00\x00\x00"),               // unknown op kind
		[]byte("NFZI\x01\x01\x01\x00\x00\x00\x07\x00"),               // bad decision
		append((&Input{Ops: []Op{{Kind: OpSubmit}}}).Encode(), 0xff), // trailing
	}
	for i, b := range cases {
		if _, err := Decode(b); err == nil {
			t.Errorf("case %d: Decode accepted garbage %q", i, b)
		}
	}
}

func TestExecuteDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := SeedInputs()[2]
	for i := 0; i < 20; i++ {
		in = Mutate(in, rng)
	}
	a := Execute(protocol.NewAltBit(), in, false)
	b := Execute(protocol.NewAltBit(), in, false)
	if len(a.Points) != len(b.Points) {
		t.Fatalf("nondeterministic execution: %d vs %d points", len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("nondeterministic coverage at %d", i)
		}
	}
}

func TestTrimPreservesExecution(t *testing.T) {
	in := SeedInputs()[0]
	res := Execute(protocol.NewAltBit(), in, false)
	trimmed := Trim(in, res)
	if len(trimmed.Data) > len(in.Data) || len(trimmed.Ack) > len(in.Ack) {
		t.Fatalf("trim grew the input")
	}
	res2 := Execute(protocol.NewAltBit(), trimmed, false)
	if len(res.Points) != len(res2.Points) {
		t.Fatalf("trim changed the execution: %d vs %d points", len(res.Points), len(res2.Points))
	}
	for i := range res.Points {
		if res.Points[i] != res2.Points[i] {
			t.Fatalf("trim changed coverage at %d", i)
		}
	}
}

func TestMutateNeverExceedsCaps(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	in := SeedInputs()[0]
	for i := 0; i < 2000; i++ {
		in = Mutate(in, rng)
		if len(in.Ops) > MaxOps || len(in.Data) > MaxDecisions || len(in.Ack) > MaxDecisions {
			t.Fatalf("iteration %d: mutation exceeded caps: %s", i, in)
		}
		if len(in.Ops) == 0 {
			t.Fatalf("iteration %d: mutation produced empty schedule", i)
		}
		if _, err := Decode(in.Encode()); err != nil {
			t.Fatalf("iteration %d: mutated input not decodable: %v", i, err)
		}
	}
}

// runCampaign is the shared harness for discovery tests: fuzz proto with a
// deterministic serial campaign and require a shrunk certificate for prop
// that replays to the same verdict with zero divergence.
func runCampaign(t *testing.T, proto protocol.Protocol, prop string, budget int64) *Result {
	t.Helper()
	out := t.TempDir()
	res, err := Run(Config{
		Protocol:        proto,
		Workers:         1,
		Budget:          budget,
		Seed:            1,
		OutDir:          out,
		StopOnViolation: true,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var v *Violation
	for _, got := range res.Violations {
		if got.Property == prop {
			v = got
		}
	}
	if v == nil {
		t.Fatalf("no %s violation found for %s in %d execs (violations: %v)",
			prop, proto.Name(), res.Execs, res.Violations)
	}
	if v.Path == "" {
		t.Fatalf("violation has no certificate file")
	}
	l, err := trace.ReadFile(v.Path)
	if err != nil {
		t.Fatalf("reading certificate: %v", err)
	}
	rr, err := replay.Run(l)
	if err != nil {
		t.Fatalf("replaying certificate: %v", err)
	}
	if rr.Verdict == nil || rr.Verdict.Property != prop {
		t.Fatalf("certificate replays to verdict %v, want %s", rr.Verdict, prop)
	}
	if rr.Divergence != nil {
		t.Fatalf("certificate replay diverged: %v", rr.Divergence)
	}
	if !rr.VerdictMatches {
		t.Fatalf("replayed verdict does not match recorded verdict %v", rr.RecordedVerdict)
	}
	return res
}

// TestFindsAltbitDL1 is the headline acceptance test: the fuzzer must
// rediscover the paper's E0 attack — the alternating bit protocol is unsafe
// over non-FIFO channels — from generic seeds, within a CI-sized budget.
func TestFindsAltbitDL1(t *testing.T) {
	res := runCampaign(t, protocol.NewAltBit(), "DL1", 30000)
	t.Logf("altbit DL1 found after %d execs, corpus %d, coverage %d",
		res.Execs, res.CorpusSize, res.CoveragePoints)
}

// TestFindsCheat1DL1 rediscovers the Theorem 4.1 mechanism: the counting
// protocol with its acceptance threshold under-provisioned by one copy
// (cheat1) is unsafe.
func TestFindsCheat1DL1(t *testing.T) {
	res := runCampaign(t, protocol.NewCheat(1), "DL1", 60000)
	t.Logf("cheat1 DL1 found after %d execs, corpus %d, coverage %d",
		res.Execs, res.CorpusSize, res.CoveragePoints)
}

// TestFindsLivelockDL3 is the liveness acceptance test: fuzzing the
// intentionally broken livelock protocol from benign seeds must produce a
// certified pumping-lemma livelock — a pumped-cycle certificate that replays
// deterministically, stays safety-clean, and still fails quiescent DL3.
func TestFindsLivelockDL3(t *testing.T) {
	out := t.TempDir()
	res, err := Run(Config{
		Protocol:        protocol.NewLivelock(),
		Workers:         1,
		Budget:          2000,
		Seed:            1,
		OutDir:          out,
		StopOnViolation: true,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var v *Violation
	for _, got := range res.Violations {
		if got.Property == "DL3" {
			v = got
		}
	}
	if v == nil {
		t.Fatalf("no DL3 livelock certified in %d execs (violations: %v)", res.Execs, res.Violations)
	}
	if v.CycleOps == 0 {
		t.Fatal("livelock violation has no pumping cycle")
	}
	if v.Path == "" {
		t.Fatal("livelock violation has no certificate file")
	}
	l, err := trace.ReadFile(v.Path)
	if err != nil {
		t.Fatalf("reading certificate: %v", err)
	}
	if got := l.Meta[replay.MetaLivelockPump]; got != "3" {
		t.Errorf("certificate pump meta = %q, want 3", got)
	}
	rr, err := replay.Run(l)
	if err != nil {
		t.Fatalf("replaying certificate: %v", err)
	}
	if rr.Verdict != nil {
		t.Fatalf("pumped certificate violates safety: %v", rr.Verdict)
	}
	if rr.DL3 == nil {
		t.Fatal("pumped certificate delivers everything; not a livelock")
	}
	if rr.Divergence != nil {
		t.Fatalf("certificate replay diverged: %v", rr.Divergence)
	}
	if !rr.VerdictMatches {
		t.Fatalf("replayed verdict does not match recorded DL3 verdict %v", rr.RecordedVerdict)
	}
	t.Logf("livelock DL3 certified after %d execs: %d-op cycle over %d-op schedule",
		v.FoundAtExec, v.CycleOps, v.Ops)
}

// TestSeedsAreBenign pins the "from scratch" claim of the discovery tests:
// no seed input may already violate safety on any registry protocol. The
// attack composition (strand a copy, then re-deliver it late) must come out
// of the mutation search, not out of the initial corpus.
func TestSeedsAreBenign(t *testing.T) {
	reg := protocol.Registry()
	for _, name := range protocol.Names() {
		proto := reg[name]
		for i, in := range SeedInputs() {
			if res := Execute(proto, in, false); res.Verdict != nil {
				t.Errorf("seed %d violates %s on %s", i, res.Verdict.Property, name)
			}
		}
	}
}

// TestSafeProtocolFindsNothing fuzzes the sound counting protocol briefly
// and requires zero violations — the fuzzer must not produce false alarms.
func TestSafeProtocolFindsNothing(t *testing.T) {
	res, err := Run(Config{Protocol: protocol.NewCntLinear(), Workers: 1, Budget: 3000, Seed: 5})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("fuzzer reported violations on the sound protocol: %v", res.Violations)
	}
}

// TestParallelFindsViolation exercises the worker pool end to end; with the
// shallow altbit target and a generous budget the pool must converge
// regardless of merge order.
func TestParallelFindsViolation(t *testing.T) {
	out := t.TempDir()
	res, err := Run(Config{
		Protocol:        protocol.NewAltBit(),
		Workers:         4,
		Budget:          200000,
		Seed:            3,
		OutDir:          out,
		StopOnViolation: true,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Violations) == 0 {
		t.Fatalf("parallel campaign found nothing in %d execs", res.Execs)
	}
}

func TestCorpusSaveLoadResume(t *testing.T) {
	dir := t.TempDir()
	corpus := filepath.Join(dir, "corpus")
	first, err := Run(Config{Protocol: protocol.NewAltBit(), Workers: 1, Budget: 2000, Seed: 2, CorpusDir: corpus})
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	if first.CorpusSize == 0 {
		t.Fatalf("first run admitted nothing")
	}
	loaded, err := LoadCorpus(corpus)
	if err != nil {
		t.Fatalf("LoadCorpus: %v", err)
	}
	if len(loaded) == 0 {
		t.Fatalf("no corpus entries persisted")
	}
	// Resume: the saved corpus must decode and re-execute; coverage after
	// replaying the saved entries alone must be substantial.
	second, err := Run(Config{Protocol: protocol.NewAltBit(), Workers: 1, Budget: int64(len(loaded)) + 3, Seed: 2, CorpusDir: corpus})
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if second.CoveragePoints < first.CoveragePoints/2 {
		t.Fatalf("resume rebuilt only %d of %d coverage points", second.CoveragePoints, first.CoveragePoints)
	}
}
