package fuzz

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/protocol"
)

// BenchmarkFuzzThroughput measures end-to-end campaign throughput
// (executions per second, mutation + execution + coverage merge) at several
// worker counts. The sound cntlinear protocol is used so no campaign ends
// early on a violation; b.N is the execution budget, so ns/op is ns per
// fuzzed input and the scaling across worker counts is read directly off
// the op times. Results are recorded in EXPERIMENTS.md.
func BenchmarkFuzzThroughput(b *testing.B) {
	counts := []int{1, 4}
	if n := runtime.NumCPU(); n != 1 && n != 4 {
		counts = append(counts, n)
	}
	for _, w := range counts {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			res, err := Run(Config{
				Protocol: protocol.NewCntLinear(),
				Workers:  w,
				Budget:   int64(b.N),
				Seed:     1,
			})
			if err != nil {
				b.Fatal(err)
			}
			if res.Execs < int64(b.N) && b.N > len(SeedInputs()) {
				b.Fatalf("campaign executed %d of %d budget", res.Execs, b.N)
			}
			b.ReportMetric(float64(res.Execs)/b.Elapsed().Seconds(), "execs/sec")
		})
	}
}

// benchCorpus grows a fixed deterministic schedule corpus: the canonical
// seeds plus mutation chains, the same construction nfbench uses for its
// pure-execution rows.
func benchCorpus(n int) []*Input {
	rng := rand.New(rand.NewSource(1))
	ins := SeedInputs()
	for len(ins) < n {
		ins = append(ins, Mutate(ins[rng.Intn(len(ins))], rng))
	}
	return ins
}

// BenchmarkExecute is the regression guard for the interned core: the
// string-keyed reference executor versus Core.Execute over the identical
// 64-input corpus. The interned/string ns-per-op ratio is the PR's headline
// claim; a future change that narrows it shows up here before it ships.
func BenchmarkExecute(b *testing.B) {
	corpus := benchCorpus(64)
	p := protocol.NewAltBit()
	b.Run("string", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if r := Execute(p, corpus[i%len(corpus)], false); r == nil {
				b.Fatal("nil result")
			}
		}
	})
	b.Run("interned", func(b *testing.B) {
		c := NewCore(p)
		for i := 0; i < b.N; i++ {
			if r := c.Execute(corpus[i%len(corpus)], false); r == nil {
				b.Fatal("nil result")
			}
		}
	})
}
