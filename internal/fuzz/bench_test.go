package fuzz

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/protocol"
)

// BenchmarkFuzzThroughput measures end-to-end campaign throughput
// (executions per second, mutation + execution + coverage merge) at several
// worker counts. The sound cntlinear protocol is used so no campaign ends
// early on a violation; b.N is the execution budget, so ns/op is ns per
// fuzzed input and the scaling across worker counts is read directly off
// the op times. Results are recorded in EXPERIMENTS.md.
func BenchmarkFuzzThroughput(b *testing.B) {
	counts := []int{1, 4}
	if n := runtime.NumCPU(); n != 1 && n != 4 {
		counts = append(counts, n)
	}
	for _, w := range counts {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			res, err := Run(Config{
				Protocol: protocol.NewCntLinear(),
				Workers:  w,
				Budget:   int64(b.N),
				Seed:     1,
			})
			if err != nil {
				b.Fatal(err)
			}
			if res.Execs < int64(b.N) && b.N > len(SeedInputs()) {
				b.Fatalf("campaign executed %d of %d budget", res.Execs, b.N)
			}
			b.ReportMetric(float64(res.Execs)/b.Elapsed().Seconds(), "execs/sec")
		})
	}
}
