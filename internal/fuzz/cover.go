package fuzz

import "hash/fnv"

// Coverage signal: one 64-bit point per observed joint configuration.
//
// A point is FNV-64a over (StateKey_t, StateKey_r, bucket(data in-transit),
// bucket(ack in-transit)). State keys are the protocols' own canonical
// encodings, so the signal is exact on endpoint state; channel occupancy is
// log-bucketed, because the raw count is unbounded (a pumping input would
// otherwise mint "new coverage" forever by stranding one more copy) while
// the occupancy *regime* — empty, one copy, a few, many — is what changes
// protocol behaviour.

// occBucket log-buckets an in-transit count: 0, 1, 2, 3–4, 5–8, 9–16, …
func occBucket(n int) int {
	if n <= 2 {
		return n
	}
	b := 2
	for top := 2; top < n; top *= 2 {
		b++
	}
	return b
}

// point hashes one joint configuration into a coverage point.
func point(tkey, rkey string, dataTransit, ackTransit int) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(tkey))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(rkey))
	_, _ = h.Write([]byte{0, byte(occBucket(dataTransit)), byte(occBucket(ackTransit))})
	return h.Sum64()
}

// livelockPoint hashes a certified livelock's cycle length (in driver
// operations, log-bucketed like channel occupancy) into the coverage space.
// It rewards campaigns for reaching structurally different livelocks — a
// longer pumping cycle is a different finding, not a repeat — without letting
// cycle length mint unbounded points.
func livelockPoint(cycleOps int) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte("livelock-cycle"))
	_, _ = h.Write([]byte{0, byte(occBucket(cycleOps))})
	return h.Sum64()
}

// coverSet is a set of coverage points. It is not synchronized: workers own
// private sets, and the master set lives in the corpus-merger goroutine.
type coverSet map[uint64]struct{}

// addAll inserts the points and reports how many were new.
func (c coverSet) addAll(points []uint64) int {
	fresh := 0
	for _, p := range points {
		if _, ok := c[p]; !ok {
			c[p] = struct{}{}
			fresh++
		}
	}
	return fresh
}

// countNew reports how many of the points are absent without inserting.
func (c coverSet) countNew(points []uint64) int {
	fresh := 0
	seen := make(map[uint64]struct{}, len(points))
	for _, p := range points {
		if _, dup := seen[p]; dup {
			continue
		}
		seen[p] = struct{}{}
		if _, ok := c[p]; !ok {
			fresh++
		}
	}
	return fresh
}
