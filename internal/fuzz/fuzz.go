package fuzz

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/protocol"
	"repro/internal/replay"
	"repro/internal/trace"
)

// Config describes one fuzzing campaign.
type Config struct {
	// Protocol is the protocol under test.
	Protocol protocol.Protocol
	// Workers is the parallel executor count. 1 (the default) runs the
	// fully deterministic serial loop; >1 runs the worker pool, which is
	// deterministic per worker stream but merges results in arrival order.
	Workers int
	// Budget is the total number of input executions across all workers.
	// Defaults to 50000.
	Budget int64
	// Seed is the campaign's root seed; per-worker RNGs are derived with
	// core.SplitSeed(Seed, "fuzz-worker-<i>").
	Seed int64
	// CorpusDir, when non-empty, persists the corpus: existing entries are
	// loaded before fuzzing (resume) and every admitted input is saved.
	CorpusDir string
	// OutDir, when non-empty, receives the shrunk violation certificates as
	// <protocol>-<property>.nft files.
	OutDir string
	// StopOnViolation stops the campaign as soon as the first violation has
	// been promoted.
	StopOnViolation bool
	// Stats, when non-nil, receives a progress line every StatsEvery
	// (default 1s).
	Stats      io.Writer
	StatsEvery time.Duration
}

func (c Config) withDefaults() (Config, error) {
	if c.Protocol == nil {
		return c, fmt.Errorf("fuzz: config needs a protocol")
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Budget <= 0 {
		c.Budget = 50000
	}
	if c.StatsEvery <= 0 {
		c.StatsEvery = time.Second
	}
	return c, nil
}

// Violation is one promoted finding: a shrunk, re-recorded, replayable
// counterexample.
type Violation struct {
	// Property is the violated property ("PL1", "DL1", "DL2").
	Property string
	// Cert is the minimized certificate trace (replay.Shrink output).
	Cert *trace.Log
	// Ops is the certificate's driver-operation count after shrinking.
	Ops int
	// FoundAtExec is the execution count at discovery.
	FoundAtExec int64
	// Path is the written certificate file ("" when Config.OutDir unset).
	Path string
}

// Result summarizes a campaign.
type Result struct {
	// Execs is the number of input executions performed.
	Execs int64
	// CorpusSize is the number of retained inputs.
	CorpusSize int
	// CoveragePoints is the size of the joint-state coverage set.
	CoveragePoints int
	// Violations holds the promoted findings, one per property (the
	// smallest certificate wins), sorted by property.
	Violations []*Violation
	// DL3Misses counts executions that stranded submitted messages
	// (quiescent-DL3 failures). Almost every partial schedule does; the
	// count is reported for context, not certified — see DESIGN.md §8.
	DL3Misses int64
	// Elapsed is the campaign wall-clock time.
	Elapsed time.Duration
}

// campaign is the merger-side state shared by the serial and parallel paths.
type campaign struct {
	cfg    Config
	master coverSet
	corpus []*Entry
	wins   map[string]*Violation // property → smallest certificate

	execs     atomic.Int64
	dl3Misses atomic.Int64
	stop      atomic.Bool

	start     time.Time
	lastStats time.Time
}

// Run executes one fuzzing campaign.
func Run(cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	c := &campaign{
		cfg:    cfg,
		master: make(coverSet),
		wins:   make(map[string]*Violation),
		start:  time.Now(),
	}

	// Seed the corpus: canonical starting schedules plus any persisted
	// entries from a previous run. Every initial input is executed (and
	// counted against the budget) so resumed campaigns rebuild the exact
	// coverage frontier they left off at.
	initial := SeedInputs()
	if cfg.CorpusDir != "" {
		loaded, err := LoadCorpus(cfg.CorpusDir)
		if err != nil {
			return nil, err
		}
		initial = append(initial, loaded...)
	}
	for _, in := range initial {
		if c.execs.Load() >= cfg.Budget {
			break
		}
		res := Execute(cfg.Protocol, in, false)
		c.execs.Add(1)
		c.observe(in, res)
		if c.stop.Load() {
			break
		}
	}

	if !c.stop.Load() && c.execs.Load() < cfg.Budget {
		if cfg.Workers == 1 {
			c.serial()
		} else {
			c.parallel()
		}
	}
	return c.result(), nil
}

// observe merges one execution into the campaign: coverage admission and
// violation promotion. Serial path and merger goroutine both funnel through
// it; in the parallel path it runs only on the merger goroutine.
func (c *campaign) observe(in *Input, res *ExecResult) {
	if res.DL3 != nil {
		c.dl3Misses.Add(1)
	}
	if res.Verdict != nil {
		c.promote(in, res)
	}
	if fresh := c.master.addAll(res.Points); fresh > 0 {
		kept := Trim(in, res)
		c.corpus = append(c.corpus, &Entry{Input: kept, NewPoints: fresh})
		if err := saveEntry(c.cfg.CorpusDir, kept); err != nil {
			fmt.Fprintf(os.Stderr, "fuzz: %v\n", err)
		}
	}
	c.maybeStats()
}

// promote turns a violating input into a first-class certificate: re-execute
// with trace recording, shrink with the delta-debugging shrinker, keep the
// smallest certificate per property, and write it out.
func (c *campaign) promote(in *Input, res *ExecResult) {
	logged := Execute(c.cfg.Protocol, in, true)
	if logged.Verdict == nil {
		// Unreachable: execution is deterministic.
		return
	}
	sr, err := replay.Shrink(logged.Log)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fuzz: shrinking %s violation: %v\n", res.Verdict.Property, err)
		return
	}
	v := &Violation{
		Property:    sr.Property,
		Cert:        sr.Log,
		Ops:         sr.FinalOps,
		FoundAtExec: c.execs.Load(),
	}
	if old, ok := c.wins[v.Property]; ok && old.Ops <= v.Ops {
		if c.cfg.StopOnViolation {
			c.stop.Store(true)
		}
		return
	}
	if c.cfg.OutDir != "" {
		if err := os.MkdirAll(c.cfg.OutDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "fuzz: out dir: %v\n", err)
		} else {
			v.Path = filepath.Join(c.cfg.OutDir, c.cfg.Protocol.Name()+"-"+v.Property+".nft")
			if err := trace.WriteFile(v.Path, v.Cert); err != nil {
				fmt.Fprintf(os.Stderr, "fuzz: write certificate: %v\n", err)
				v.Path = ""
			}
		}
	}
	c.wins[v.Property] = v
	if c.cfg.Stats != nil {
		fmt.Fprintf(c.cfg.Stats, "VIOLATION %s after %d execs: %d ops after shrink%s\n",
			v.Property, v.FoundAtExec, v.Ops, pathNote(v.Path))
	}
	if c.cfg.StopOnViolation {
		c.stop.Store(true)
	}
}

func pathNote(p string) string {
	if p == "" {
		return ""
	}
	return " -> " + p
}

// pickParent selects a mutation parent: mostly uniform over the corpus, with
// a bias toward the newest entries (the current frontier).
func pickParent(corpus []*Entry, rng *rand.Rand) *Input {
	if len(corpus) == 0 {
		return SeedInputs()[0]
	}
	if rng.Intn(2) == 0 && len(corpus) > 16 {
		return corpus[len(corpus)-1-rng.Intn(16)].Input
	}
	return corpus[rng.Intn(len(corpus))].Input
}

// nextCandidate derives one candidate input from the corpus snapshot.
func nextCandidate(corpus []*Entry, rng *rand.Rand) *Input {
	parent := pickParent(corpus, rng)
	if len(corpus) >= 2 && rng.Intn(10) == 0 {
		other := pickParent(corpus, rng)
		return Mutate(Crossover(parent, other, rng), rng)
	}
	return Mutate(parent, rng)
}

// serial is the deterministic single-worker loop.
func (c *campaign) serial() {
	rng := rand.New(rand.NewSource(core.SplitSeed(c.cfg.Seed, "fuzz-worker-0")))
	for c.execs.Load() < c.cfg.Budget && !c.stop.Load() {
		cand := nextCandidate(c.corpus, rng)
		res := Execute(c.cfg.Protocol, cand, false)
		c.execs.Add(1)
		c.observe(cand, res)
	}
}

// workerResult is what a worker ships to the merger: the candidate and its
// phenotype. Workers pre-filter against a private coverage set, so most
// executions never produce a message.
type workerResult struct {
	in  *Input
	res *ExecResult
}

// parallel runs the worker pool: Workers executor goroutines, one corpus
// merger. Workers pull corpus snapshots from an atomic pointer, push
// coverage-adding or violating results to the merger, and the merger — the
// only goroutine that touches the master coverage set, the corpus and the
// winners — admits, promotes and republishes.
func (c *campaign) parallel() {
	type snapshot struct{ corpus []*Entry }
	var snap atomic.Pointer[snapshot]
	snap.Store(&snapshot{corpus: c.corpus})

	results := make(chan workerResult, 4*c.cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < c.cfg.Workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(core.SplitSeed(c.cfg.Seed, "fuzz-worker-"+strconv.Itoa(id))))
			local := make(coverSet)
			for !c.stop.Load() {
				if c.execs.Add(1) > c.cfg.Budget {
					c.execs.Add(-1)
					return
				}
				cand := nextCandidate(snap.Load().corpus, rng)
				res := Execute(c.cfg.Protocol, cand, false)
				if res.DL3 != nil {
					c.dl3Misses.Add(1)
				}
				// Ship only results that matter: a violation, or coverage new
				// to this worker's view (a superset check of "new globally").
				if res.Verdict != nil || local.addAll(res.Points) > 0 {
					results <- workerResult{in: cand, res: res}
				}
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	for wr := range results {
		before := len(c.corpus)
		// DL3 was already counted worker-side; zero it so observe does not
		// double-count.
		wr.res.DL3 = nil
		c.observe(wr.in, wr.res)
		if len(c.corpus) != before {
			snap.Store(&snapshot{corpus: c.corpus})
		}
	}
}

func (c *campaign) maybeStats() {
	if c.cfg.Stats == nil {
		return
	}
	now := time.Now()
	if now.Sub(c.lastStats) < c.cfg.StatsEvery {
		return
	}
	c.lastStats = now
	execs := c.execs.Load()
	elapsed := now.Sub(c.start).Seconds()
	rate := float64(execs)
	if elapsed > 0 {
		rate = float64(execs) / elapsed
	}
	fmt.Fprintf(c.cfg.Stats, "execs %d (%.0f/sec) corpus %d coverage %d violations %d\n",
		execs, rate, len(c.corpus), len(c.master), len(c.wins))
}

func (c *campaign) result() *Result {
	r := &Result{
		Execs:          c.execs.Load(),
		CorpusSize:     len(c.corpus),
		CoveragePoints: len(c.master),
		DL3Misses:      c.dl3Misses.Load(),
		Elapsed:        time.Since(c.start),
	}
	for _, v := range c.wins {
		r.Violations = append(r.Violations, v)
	}
	sort.Slice(r.Violations, func(i, j int) bool { return r.Violations[i].Property < r.Violations[j].Property })
	return r
}
