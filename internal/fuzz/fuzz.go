package fuzz

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/protocol"
	"repro/internal/replay"
	"repro/internal/stabilize"
	"repro/internal/trace"
)

// Config describes one fuzzing campaign.
type Config struct {
	// Protocol is the protocol under test.
	Protocol protocol.Protocol
	// Workers is the parallel executor count. 1 (the default) runs the
	// fully deterministic serial loop; >1 runs the worker pool, which is
	// deterministic per worker stream but merges results in arrival order.
	Workers int
	// Budget is the total number of input executions across all workers.
	// Defaults to 50000.
	Budget int64
	// Seed is the campaign's root seed; per-worker RNGs are derived with
	// core.SplitSeed(Seed, "fuzz-worker-<i>").
	Seed int64
	// CorpusDir, when non-empty, persists the corpus: existing entries are
	// loaded before fuzzing (resume) and every admitted input is saved.
	CorpusDir string
	// OutDir, when non-empty, receives the shrunk violation certificates as
	// <protocol>-<property>.nft files.
	OutDir string
	// StopOnViolation stops the campaign as soon as the first violation has
	// been promoted.
	StopOnViolation bool
	// Corrupt enables the corrupted-start dimension: candidates may grow a
	// corruption gene (MutateCorrupt), executions with a gene start from the
	// resolved corrupted configuration, and violations are judged against
	// the corruption's amnesty. Off by default — enabling it changes the
	// campaign's RNG trajectory relative to a clean run with the same seed.
	Corrupt bool
	// StringCore forces the legacy string-keyed executor (Execute) instead of
	// the interned Core. The two are phenotype-identical — same coverage
	// points, verdicts and certificates, so the campaign trajectory does not
	// depend on the flag — and the differential harness (internal/simdiff)
	// and the A/B benchmark rows exist to keep it that way.
	StringCore bool
	// Stats, when non-nil, receives a progress line every StatsEvery
	// (default 1s).
	Stats      io.Writer
	StatsEvery time.Duration
	// Clock supplies the campaign's notion of time, used only for rate
	// reporting and Result.Elapsed — never for fuzzing decisions. It is an
	// injection seam so the package's library code stays free of ambient
	// clock reads (the wallclock lint enforces this); tests substitute a
	// fake. Defaults to time.Now.
	Clock func() time.Time
}

func (c Config) withDefaults() (Config, error) {
	if c.Protocol == nil {
		return c, fmt.Errorf("fuzz: config needs a protocol")
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Budget <= 0 {
		c.Budget = 50000
	}
	if c.StatsEvery <= 0 {
		c.StatsEvery = time.Second
	}
	if c.Clock == nil {
		c.Clock = time.Now //nfvet:allow wallclock (the injectable clock seam's default)
	}
	return c, nil
}

// Violation is one promoted finding: a shrunk, re-recorded, replayable
// counterexample.
type Violation struct {
	// Property is the violated property ("PL1", "DL1", "DL2", or "DL3" for a
	// certified livelock).
	Property string
	// Corruption is the corrupted start the violation needs, as a canonical
	// stabilize key; "" for clean-start findings. Corrupted findings are
	// judged against the corruption's amnesty, not the clean-start checkers.
	Corruption string
	// Cert is the certificate trace: the replay.Shrink output for safety
	// violations, or the pumped pumping-lemma certificate for livelocks.
	Cert *trace.Log
	// Ops is the minimized schedule's driver-operation count. For livelocks
	// this counts the shrunk prefix schedule, not the pumped certificate.
	Ops int
	// CycleOps is the pumping cycle's driver-operation count; 0 for safety
	// violations.
	CycleOps int
	// FoundAtExec is the execution count at discovery.
	FoundAtExec int64
	// Path is the written certificate file ("" when Config.OutDir unset).
	Path string
}

// Result summarizes a campaign.
type Result struct {
	// Execs is the number of input executions performed.
	Execs int64
	// CorpusSize is the number of retained inputs.
	CorpusSize int
	// CoveragePoints is the size of the joint-state coverage set.
	CoveragePoints int
	// Violations holds the promoted findings, one per property (the
	// smallest certificate wins), sorted by property.
	Violations []*Violation
	// DL3Misses counts executions that stranded submitted messages
	// (quiescent-DL3 failures). Almost every partial schedule does, so the
	// raw count is context only; misses that survive the reliable closing
	// drive are promoted to certified livelocks (Violations entries with
	// Property "DL3") — see DESIGN.md §8.
	DL3Misses int64
	// Elapsed is the campaign wall-clock time.
	Elapsed time.Duration
}

// campaign is the merger-side state shared by the serial and parallel paths.
type campaign struct {
	cfg    Config
	exec   func(in *Input, withLog bool) *ExecResult // merger-side executor
	master coverSet
	corpus []*Entry
	wins   map[string]*Violation // property → smallest certificate

	execs     atomic.Int64
	dl3Misses atomic.Int64
	stop      atomic.Bool

	start     time.Time
	lastStats time.Time
}

// Run executes one fuzzing campaign.
func Run(cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	c := &campaign{
		cfg:    cfg,
		master: make(coverSet),
		wins:   make(map[string]*Violation),
		start:  cfg.Clock(),
	}
	c.exec = c.newExec()

	// Seed the corpus: canonical starting schedules plus any persisted
	// entries from a previous run. Every initial input is executed (and
	// counted against the budget) so resumed campaigns rebuild the exact
	// coverage frontier they left off at.
	initial := SeedInputs()
	if cfg.CorpusDir != "" {
		loaded, err := LoadCorpus(cfg.CorpusDir)
		if err != nil {
			return nil, err
		}
		initial = append(initial, loaded...)
	}
	for _, in := range initial {
		if c.execs.Load() >= cfg.Budget {
			break
		}
		res := c.exec(in, false)
		c.execs.Add(1)
		c.observe(in, res, true)
		if c.stop.Load() {
			break
		}
	}

	if !c.stop.Load() && c.execs.Load() < cfg.Budget {
		if cfg.Workers == 1 {
			c.serial()
		} else {
			c.parallel()
		}
	}
	return c.result(), nil
}

// newExec builds an executor closure for one goroutine: the string reference
// Execute under Config.StringCore, otherwise a fresh interned Core. Cores are
// not safe for concurrent use, so each worker calls newExec itself; the
// campaign's own c.exec serves the seeding loop, the serial loop and the
// merger-side promotions, which all run on one goroutine.
func (c *campaign) newExec() func(in *Input, withLog bool) *ExecResult {
	if c.cfg.StringCore {
		proto := c.cfg.Protocol
		return func(in *Input, withLog bool) *ExecResult { return Execute(proto, in, withLog) }
	}
	return NewCore(c.cfg.Protocol).Execute
}

// observe merges one execution into the campaign: coverage admission and
// violation promotion. Serial path and merger goroutine both funnel through
// it; in the parallel path it runs only on the merger goroutine, with
// countDL3 false because workers already counted their own misses.
func (c *campaign) observe(in *Input, res *ExecResult, countDL3 bool) {
	if countDL3 && res.DL3 != nil {
		c.dl3Misses.Add(1)
	}
	if res.Verdict != nil {
		c.promote(in, res)
	}
	fresh := c.master.addAll(res.Points)
	if fresh > 0 {
		kept := Trim(in, res)
		c.corpus = append(c.corpus, &Entry{Input: kept, NewPoints: fresh})
		if err := saveEntry(c.cfg.CorpusDir, kept); err != nil {
			fmt.Fprintf(os.Stderr, "fuzz: %v\n", err)
		}
	}
	// Livelock promotion: a safety-clean DL3 miss on a coverage-adding input
	// is a candidate livelock. Gating on fresh coverage keeps certification
	// attempts rare (the common stranded-schedule miss adds nothing new after
	// the frontier settles), and the first certified win per campaign is kept.
	if fresh > 0 && res.Verdict == nil && res.DL3 != nil && c.wins["DL3"] == nil {
		c.promoteLivelock(in)
	}
	c.maybeStats()
}

// promote turns a violating input into a first-class certificate: re-execute
// with trace recording, shrink with the delta-debugging shrinker, keep the
// smallest certificate per property, and write it out. Corrupted-start
// violations take their own confirmation path (promoteCorrupt).
func (c *campaign) promote(in *Input, res *ExecResult) {
	if !res.Corruption.Clean() {
		c.promoteCorrupt(in)
		return
	}
	logged := c.exec(in, true)
	if logged.Verdict == nil {
		// Unreachable: execution is deterministic.
		return
	}
	sr, err := replay.Shrink(logged.Log)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fuzz: shrinking %s violation: %v\n", res.Verdict.Property, err)
		return
	}
	v := &Violation{
		Property:    sr.Property,
		Cert:        sr.Log,
		Ops:         sr.FinalOps,
		FoundAtExec: c.execs.Load(),
	}
	if old, ok := c.wins[v.Property]; ok && old.Ops <= v.Ops {
		if c.cfg.StopOnViolation {
			c.stop.Store(true)
		}
		return
	}
	if c.cfg.OutDir != "" {
		if err := os.MkdirAll(c.cfg.OutDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "fuzz: out dir: %v\n", err)
		} else {
			v.Path = filepath.Join(c.cfg.OutDir, c.cfg.Protocol.Name()+"-"+v.Property+".nft")
			if err := trace.WriteFile(v.Path, v.Cert); err != nil {
				fmt.Fprintf(os.Stderr, "fuzz: write certificate: %v\n", err)
				v.Path = ""
			}
		}
	}
	c.wins[v.Property] = v
	if c.cfg.Stats != nil {
		fmt.Fprintf(c.cfg.Stats, "VIOLATION %s after %d execs: %d ops after shrink%s\n",
			v.Property, v.FoundAtExec, v.Ops, pathNote(v.Path))
	}
	if c.cfg.StopOnViolation {
		c.stop.Store(true)
	}
}

// promoteCorrupt turns a corrupted-start over-amnesty violation into a
// replay-confirmed certificate. The delta-debugging shrinker is deliberately
// skipped: its oracle is the clean-start checker suite, which fails a
// corrupted run on its first *bought* fault, so shrinking against it would
// minimize toward the wrong finding. Instead the logged execution is
// replayed independently, re-judged from scratch by the amnesty judge, and
// the replay's own re-recorded log becomes the certificate — it opens with
// the replayable corrupt/poison operations and carries the amnesty-level
// verdict in its metadata, exactly like `nfvet verify -stabilize` witnesses.
func (c *campaign) promoteCorrupt(in *Input) {
	logged := c.exec(in, true)
	if logged.Verdict == nil {
		// Unreachable: execution is deterministic.
		return
	}
	rr, err := replay.Run(logged.Log)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fuzz: corrupted-start witness replay: %v\n", err)
		return
	}
	if rr.Divergence != nil {
		fmt.Fprintf(os.Stderr, "fuzz: corrupted-start witness diverged on replay: %v\n", rr.Divergence)
		return
	}
	j := stabilize.JudgeTrace(rr.Trace, logged.Amnesty)
	if j.Violation == nil {
		// The independent replay stayed within amnesty; the finding did not
		// reproduce, so it is not promoted.
		return
	}
	cert := rr.Log
	cert.SetMeta(trace.MetaSource, "fuzz-stabilize")
	cert.SetMeta(stabilize.MetaCorruption, logged.Corruption.Key())
	cert.SetMeta(stabilize.MetaAmnesty, strconv.Itoa(logged.Amnesty))
	cert.SetMeta(stabilize.MetaStabilize, "diverged "+j.Violation.Property)
	v := &Violation{
		Property:    j.Violation.Property,
		Corruption:  logged.Corruption.Key(),
		Cert:        cert,
		Ops:         len(in.Ops),
		FoundAtExec: c.execs.Load(),
	}
	// Corrupted findings compete in their own bracket: a clean-start DL1 and
	// a corrupted-start DL1 are different claims (the latter says nothing
	// without its start), so neither should evict the other.
	key := v.Property + "+corrupt"
	if old, ok := c.wins[key]; ok && old.Ops <= v.Ops {
		if c.cfg.StopOnViolation {
			c.stop.Store(true)
		}
		return
	}
	if c.cfg.OutDir != "" {
		if err := os.MkdirAll(c.cfg.OutDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "fuzz: out dir: %v\n", err)
		} else {
			v.Path = filepath.Join(c.cfg.OutDir, c.cfg.Protocol.Name()+"-"+v.Property+"-corrupt.nft")
			if err := trace.WriteFile(v.Path, v.Cert); err != nil {
				fmt.Fprintf(os.Stderr, "fuzz: write certificate: %v\n", err)
				v.Path = ""
			}
		}
	}
	c.wins[key] = v
	if c.cfg.Stats != nil {
		fmt.Fprintf(c.cfg.Stats, "VIOLATION %s from corrupted start %s after %d execs: %d ops, amnesty %d%s\n",
			v.Property, v.Corruption, v.FoundAtExec, v.Ops, logged.Amnesty, pathNote(v.Path))
	}
	if c.cfg.StopOnViolation {
		c.stop.Store(true)
	}
}

// promoteLivelock tries to turn a safety-clean DL3 miss into a certified,
// pumpable livelock. Most misses are stranded schedules the protocol would
// recover from — ShrinkLiveness's reliable oracle rejects those immediately
// and silently. A genuine livelock is minimized, certified via the
// pumping-lemma certifier (which verifies its own cycle by replay), and the
// *pumped* certificate is what gets recorded and written out.
func (c *campaign) promoteLivelock(in *Input) {
	logged := c.exec(in, true)
	if logged.Verdict != nil || logged.DL3 == nil {
		// Unreachable: execution is deterministic.
		return
	}
	// Certify first, shrink after: refusals are one closing drive, while the
	// liveness shrink replays that drive per candidate. The cheap cases — a
	// protocol that recovers, or one that strands a dropped message without
	// cycling (correct counting protocols never retransmit, so a dropped copy
	// is gone but no configuration repeats) — must stay cheap and silent.
	if _, err := replay.CertifyLivelock(logged.Log, replay.CertifyOptions{}); err != nil {
		return
	}
	sr, err := replay.ShrinkLiveness(logged.Log, replay.DriveReliable)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fuzz: shrinking livelock trace: %v\n", err)
		return
	}
	cert, err := replay.CertifyLivelock(sr.Log, replay.CertifyOptions{})
	if err != nil {
		// The minimized schedule lost the pumping cycle (it can only have
		// gotten simpler, so this is unexpected); fall back to certifying the
		// unshrunk trace rather than dropping a real finding.
		fmt.Fprintf(os.Stderr, "fuzz: re-certifying shrunk livelock trace: %v\n", err)
		return
	}
	v := &Violation{
		Property:    "DL3",
		Cert:        cert.Pumped(3),
		Ops:         sr.FinalOps,
		CycleOps:    cert.CycleOps,
		FoundAtExec: c.execs.Load(),
	}
	// Cycle length is a coverage dimension of its own: campaigns that have
	// certified a short cycle still reward inputs reaching longer ones.
	c.master.addAll([]uint64{livelockPoint(cert.CycleOps)})
	if c.cfg.OutDir != "" {
		if err := os.MkdirAll(c.cfg.OutDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "fuzz: out dir: %v\n", err)
		} else {
			v.Path = filepath.Join(c.cfg.OutDir, c.cfg.Protocol.Name()+"-DL3.nft")
			if err := trace.WriteFile(v.Path, v.Cert); err != nil {
				fmt.Fprintf(os.Stderr, "fuzz: write certificate: %v\n", err)
				v.Path = ""
			}
		}
	}
	c.wins["DL3"] = v
	if c.cfg.Stats != nil {
		fmt.Fprintf(c.cfg.Stats, "VIOLATION DL3 after %d execs: livelock, %d-op cycle over %d-op schedule%s\n",
			v.FoundAtExec, v.CycleOps, v.Ops, pathNote(v.Path))
	}
	if c.cfg.StopOnViolation {
		c.stop.Store(true)
	}
}

func pathNote(p string) string {
	if p == "" {
		return ""
	}
	return " -> " + p
}

// pickParent selects a mutation parent: mostly uniform over the corpus, with
// a bias toward the newest entries (the current frontier).
func pickParent(corpus []*Entry, rng *rand.Rand) *Input {
	if len(corpus) == 0 {
		return SeedInputs()[0]
	}
	if rng.Intn(2) == 0 && len(corpus) > 16 {
		return corpus[len(corpus)-1-rng.Intn(16)].Input
	}
	return corpus[rng.Intn(len(corpus))].Input
}

// nextCandidate derives one candidate input from the corpus snapshot. With
// corrupt enabled, a third of the candidates additionally get their
// corruption gene mutated — applied after the schedule mutations so the gene
// step never perturbs the clean operators' RNG draws within a candidate.
func nextCandidate(corpus []*Entry, rng *rand.Rand, corrupt bool) *Input {
	parent := pickParent(corpus, rng)
	var cand *Input
	if len(corpus) >= 2 && rng.Intn(10) == 0 {
		other := pickParent(corpus, rng)
		cand = Mutate(Crossover(parent, other, rng), rng)
	} else {
		cand = Mutate(parent, rng)
	}
	if corrupt && rng.Intn(3) == 0 {
		MutateCorrupt(cand, rng)
	}
	return cand
}

// serial is the deterministic single-worker loop.
func (c *campaign) serial() {
	rng := rand.New(rand.NewSource(core.SplitSeed(c.cfg.Seed, "fuzz-worker-0")))
	for c.execs.Load() < c.cfg.Budget && !c.stop.Load() {
		cand := nextCandidate(c.corpus, rng, c.cfg.Corrupt)
		res := c.exec(cand, false)
		c.execs.Add(1)
		c.observe(cand, res, true)
	}
}

// workerResult is what a worker ships to the merger: the candidate and its
// phenotype. Workers pre-filter against a private coverage set, so most
// executions never produce a message.
type workerResult struct {
	in  *Input
	res *ExecResult
}

// parallel runs the worker pool: Workers executor goroutines, one corpus
// merger. Workers pull corpus snapshots from an atomic pointer, push
// coverage-adding or violating results to the merger, and the merger — the
// only goroutine that touches the master coverage set, the corpus and the
// winners — admits, promotes and republishes.
func (c *campaign) parallel() {
	type snapshot struct{ corpus []*Entry }
	var snap atomic.Pointer[snapshot]
	snap.Store(&snapshot{corpus: c.corpus})

	results := make(chan workerResult, 4*c.cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < c.cfg.Workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(core.SplitSeed(c.cfg.Seed, "fuzz-worker-"+strconv.Itoa(id))))
			local := make(coverSet)
			exec := c.newExec() // per-worker: cores are single-goroutine
			for !c.stop.Load() {
				if c.execs.Add(1) > c.cfg.Budget {
					c.execs.Add(-1)
					return
				}
				cand := nextCandidate(snap.Load().corpus, rng, c.cfg.Corrupt)
				res := exec(cand, false)
				if res.DL3 != nil {
					c.dl3Misses.Add(1)
				}
				// Ship only results that matter: a violation, or coverage new
				// to this worker's view (a superset check of "new globally").
				if res.Verdict != nil || local.addAll(res.Points) > 0 {
					results <- workerResult{in: cand, res: res}
				}
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	for wr := range results {
		before := len(c.corpus)
		// DL3 was already counted worker-side (countDL3 false), but the value
		// itself is kept: the merger needs it for livelock promotion.
		c.observe(wr.in, wr.res, false)
		if len(c.corpus) != before {
			snap.Store(&snapshot{corpus: c.corpus})
		}
	}
}

func (c *campaign) maybeStats() {
	if c.cfg.Stats == nil {
		return
	}
	now := c.cfg.Clock()
	if now.Sub(c.lastStats) < c.cfg.StatsEvery {
		return
	}
	c.lastStats = now
	execs := c.execs.Load()
	elapsed := now.Sub(c.start).Seconds()
	rate := float64(execs)
	if elapsed > 0 {
		rate = float64(execs) / elapsed
	}
	fmt.Fprintf(c.cfg.Stats, "execs %d (%.0f/sec) corpus %d coverage %d violations %d\n",
		execs, rate, len(c.corpus), len(c.master), len(c.wins))
}

func (c *campaign) result() *Result {
	r := &Result{
		Execs:          c.execs.Load(),
		CorpusSize:     len(c.corpus),
		CoveragePoints: len(c.master),
		DL3Misses:      c.dl3Misses.Load(),
		Elapsed:        c.cfg.Clock().Sub(c.start),
	}
	//nfvet:allow maprange (violations are sorted by property below)
	for _, v := range c.wins {
		r.Violations = append(r.Violations, v)
	}
	sort.Slice(r.Violations, func(i, j int) bool {
		if r.Violations[i].Property != r.Violations[j].Property {
			return r.Violations[i].Property < r.Violations[j].Property
		}
		return r.Violations[i].Corruption < r.Violations[j].Corruption
	})
	return r
}
