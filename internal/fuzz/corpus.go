package fuzz

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/protocol"
)

// Corpus management: the retained input set and its on-disk form.
//
// The in-memory corpus is an append-only slice owned by the merger
// goroutine; workers see it through immutable snapshots. On disk a corpus is
// a directory of NFZI files named by content hash, so saving is idempotent,
// resuming is re-reading the directory, and two runs can share a corpus
// without coordination.

// Entry is one retained corpus input with its discovery bookkeeping.
type Entry struct {
	Input *Input
	// NewPoints is the number of coverage points this entry contributed
	// when it was admitted (its "energy" for parent selection).
	NewPoints int
}

// inputID is the content hash used as the corpus filename stem.
func inputID(in *Input) string {
	h := fnv.New64a()
	_, _ = h.Write(in.Encode())
	return fmt.Sprintf("%016x", h.Sum64())
}

// SaveCorpus writes every input to dir as <hash>.nfzi, creating dir if
// needed. Existing files are left alone (content-addressed names make
// rewrites no-ops).
func SaveCorpus(dir string, inputs []*Input) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("fuzz: corpus dir: %w", err)
	}
	for _, in := range inputs {
		path := filepath.Join(dir, inputID(in)+".nfzi")
		if _, err := os.Stat(path); err == nil {
			continue
		}
		if err := os.WriteFile(path, in.Encode(), 0o644); err != nil {
			return fmt.Errorf("fuzz: save corpus entry: %w", err)
		}
	}
	return nil
}

// saveEntry persists one input to dir (no-op if dir is empty).
func saveEntry(dir string, in *Input) error {
	if dir == "" {
		return nil
	}
	return SaveCorpus(dir, []*Input{in})
}

// Distill reduces a corpus to a covering subset for proto by greedy set
// cover: every input is executed against proto once, then inputs are
// admitted in repeated passes, each pass taking the input contributing the
// most still-uncovered coverage points, until no remaining input contributes
// anything. The classic use is cross-protocol corpus transfer — schedules
// that explored one protocol's joint-state space are distilled against the
// *target* protocol, and the survivors seed its campaign; the
// channel-behaviour structure they carry (strand, accumulate, re-deliver
// late) transfers even though the endpoint state spaces differ.
func Distill(proto protocol.Protocol, inputs []*Input) []*Input {
	type scored struct {
		in     *Input
		points []uint64
	}
	pool := make([]*scored, 0, len(inputs))
	for _, in := range inputs {
		res := Execute(proto, in, false)
		pool = append(pool, &scored{in: in, points: res.Points})
	}
	covered := make(coverSet)
	var kept []*Input
	for len(pool) > 0 {
		best, bestFresh := -1, 0
		for i, s := range pool {
			if fresh := covered.countNew(s.points); fresh > bestFresh {
				best, bestFresh = i, fresh
			}
		}
		if best < 0 {
			break
		}
		covered.addAll(pool[best].points)
		kept = append(kept, pool[best].in)
		pool = append(pool[:best], pool[best+1:]...)
	}
	return kept
}

// order. A missing directory is an empty corpus; an undecodable file is an
// error (a corpus dir is machine-written — corruption should be loud).
func LoadCorpus(dir string) ([]*Input, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("fuzz: read corpus dir: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".nfzi" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	inputs := make([]*Input, 0, len(names))
	for _, name := range names {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("fuzz: read corpus entry: %w", err)
		}
		in, err := Decode(b)
		if err != nil {
			return nil, fmt.Errorf("fuzz: corpus entry %s: %w", name, err)
		}
		inputs = append(inputs, in)
	}
	return inputs, nil
}
