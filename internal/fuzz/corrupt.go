package fuzz

import (
	"hash/fnv"
	"math/rand"
	"sort"

	"repro/internal/protocol"
	"repro/internal/stabilize"
)

// Corrupted-start fuzzing: the genotype grows an optional CorruptGene — raw
// picks into the protocol's declared protocol.Corruptible space — and the
// executor applies the resolved corruption before driving the schedule, then
// judges the trace with the stabilize amnesty judge instead of the
// clean-start checkers. The adversary of Theorems 2.1/3.1 chooses channel
// behaviour from a clean start; this adversary also chooses the start.
//
// Picks are reduced modulo the space's list lengths at resolution time, so
// every byte value is a feasible gene for every protocol (the fuzzer's
// totality invariant survives the new dimension) and the same gene transfers
// across protocols with different space sizes, like decision streams do.

// MaxPoisonGenes caps the poison picks per channel a gene may carry. Each
// poison pick buys one fault of amnesty, so an unbounded gene would buy
// itself out of every violation; the cap keeps the budget adversarial.
const MaxPoisonGenes = 3

// CorruptOccupancy is the channel-occupancy convention used to compute a
// corrupted input's amnesty (stabilize.Amnesty). It matches `nfvet verify`'s
// default -maxocc, so a violation the fuzzer finds is over the same budget
// the verifier proves against.
const CorruptOccupancy = 2

// CorruptGene is the corrupted-start strand of an input: index picks into
// the protocol's corruption space. TPick/RPick select endpoint start states;
// Data/Ack select poison packets pre-loaded per channel.
type CorruptGene struct {
	TPick, RPick uint8
	Data, Ack    []uint8
}

// clone returns an independent deep copy (nil-safe).
func (g *CorruptGene) clone() *CorruptGene {
	if g == nil {
		return nil
	}
	c := &CorruptGene{TPick: g.TPick, RPick: g.RPick}
	c.Data = append([]uint8(nil), g.Data...)
	c.Ack = append([]uint8(nil), g.Ack...)
	return c
}

// resolveCorruption maps a gene onto proto's declared corruption space by
// reducing each pick modulo the corresponding list length. Poison picks are
// sorted after reduction so equivalent multisets resolve to the same
// canonical stabilize.Corruption (and hence the same coverage salt and
// amnesty) regardless of gene order. Non-Corruptible protocols resolve every
// gene to the clean start.
func resolveCorruption(proto protocol.Protocol, g *CorruptGene) stabilize.Corruption {
	cp, ok := proto.(protocol.Corruptible)
	if !ok || g == nil {
		return stabilize.Corruption{}
	}
	space := cp.Corruptions()
	var c stabilize.Corruption
	if n := len(space.Transmitters); n > 0 {
		c.TIdx = int(g.TPick) % n
	}
	if n := len(space.Receivers); n > 0 {
		c.RIdx = int(g.RPick) % n
	}
	pickAll := func(picks []uint8, n int) []int {
		if n == 0 {
			return nil
		}
		idx := make([]int, 0, len(picks))
		for _, p := range picks {
			idx = append(idx, int(p)%n)
		}
		sort.Ints(idx)
		return idx
	}
	for _, i := range pickAll(g.Data, len(space.DataPoison)) {
		c.Data = append(c.Data, space.DataPoison[i])
	}
	for _, i := range pickAll(g.Ack, len(space.AckPoison)) {
		c.Ack = append(c.Ack, space.AckPoison[i])
	}
	return c
}

// corruptSalt hashes a resolved corruption into a coverage-point salt, so a
// joint state reached from a corrupted start is a different coverage point
// from the same joint state reached cleanly. Without the salt, benign runs
// would have already claimed most of the corrupted runs' coverage and the
// corpus would never retain corrupted inputs.
func corruptSalt(c stabilize.Corruption) uint64 {
	if c.Clean() {
		return 0
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte("corrupt:"))
	_, _ = h.Write([]byte(c.Key()))
	return h.Sum64()
}

// MutateCorrupt mutates the corruption gene of c in place, growing one if
// absent. It is deliberately NOT an entry of the mutators table: that table's
// order is the clean-campaign determinism contract, and the corrupted
// dimension is opt-in (fuzz.Config.Corrupt) — campaigns that enable it accept
// a different RNG trajectory, campaigns that do not draw exactly the values
// they always did.
func MutateCorrupt(c *Input, rng *rand.Rand) {
	if c.Corrupt == nil {
		c.Corrupt = &CorruptGene{}
	}
	g := c.Corrupt
	switch rng.Intn(8) {
	case 0:
		g.TPick = uint8(rng.Intn(256))
	case 1:
		g.RPick = uint8(rng.Intn(256))
	case 2, 3:
		if len(g.Data) < MaxPoisonGenes {
			g.Data = append(g.Data, uint8(rng.Intn(256)))
		} else {
			g.Data[rng.Intn(len(g.Data))] = uint8(rng.Intn(256))
		}
	case 4:
		if len(g.Ack) < MaxPoisonGenes {
			g.Ack = append(g.Ack, uint8(rng.Intn(256)))
		} else {
			g.Ack[rng.Intn(len(g.Ack))] = uint8(rng.Intn(256))
		}
	case 5:
		if len(g.Data) > 0 {
			g.Data = g.Data[:len(g.Data)-1]
		}
	case 6:
		if len(g.Ack) > 0 {
			g.Ack = g.Ack[:len(g.Ack)-1]
		}
	case 7:
		// Revert to the clean start: corrupted lineages must be able to
		// shed the gene, or the whole corpus drifts corrupted.
		c.Corrupt = nil
	}
}
