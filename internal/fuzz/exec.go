package fuzz

import (
	"strconv"

	"repro/internal/channel"
	"repro/internal/ioa"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/stabilize"
	"repro/internal/trace"
)

// ExecResult is the phenotype of one input: what happened when its schedule
// was driven against a fresh protocol instance.
type ExecResult struct {
	// Points are the coverage points observed after each operation, in
	// order (duplicates included; sets are the caller's business).
	Points []uint64
	// Verdict is the safety violation of the executed trace (PL1 either
	// direction, DL1, DL2), nil if safe.
	Verdict *ioa.Violation
	// DL3 is the quiescent-liveness violation, nil if every submitted
	// message was delivered. It is reported separately because almost every
	// random schedule strands messages — it guides nothing.
	DL3 *ioa.Violation
	// Log is the re-recordable NFT event log of the execution; nil unless
	// requested. A promoted input's Log is what gets shrunk and written as
	// a certificate.
	Log *trace.Log
	// DataUsed and AckUsed count the decisions actually consumed per
	// channel; Trim uses them to cut dead genotype tails.
	DataUsed, AckUsed int
	// StaleHits counts OpStale operations that found a copy to deliver.
	StaleHits int
	// Corruption is the resolved corrupted start (zero/clean when the input
	// carries no gene or the protocol declares no corruption space), and
	// Amnesty/Charges are the fault budget it bought and the faults the
	// amnesty judge charged the run. Verdict/DL3 on a corrupted run are the
	// judge's over-amnesty violations, not the clean-start checkers'.
	Corruption stabilize.Corruption
	Amnesty    int
	Charges    int
}

// Execute drives one input against a fresh instance of proto and reports
// coverage and verdicts. withLog additionally records the execution as a
// replayable trace.Log (costlier; used only when promoting a winner or
// seeding certificates).
//
// Execution is total and deterministic: every syntactically valid input is a
// feasible schedule (infeasible stale picks are no-ops, dry decision streams
// fall back to Delay) and two executions of the same input are identical.
func Execute(proto protocol.Protocol, in *Input, withLog bool) *ExecResult {
	res := &ExecResult{Points: make([]uint64, 0, len(in.Ops))}

	var tlog *trace.Log
	if withLog {
		tlog = trace.NewLog(map[string]string{trace.MetaSource: "fuzz"})
	}
	r := sim.NewRunner(sim.Config{
		Protocol:    proto,
		DataPolicy:  channel.Counting(channel.FromDecisions(in.Data, channel.Delay, nil), &res.DataUsed),
		AckPolicy:   channel.Counting(channel.FromDecisions(in.Ack, channel.Delay, nil), &res.AckUsed),
		RecordTrace: true,
		TraceLog:    tlog,
	})

	var salt uint64
	if in.Corrupt != nil {
		res.Corruption = resolveCorruption(proto, in.Corrupt)
		res.Amnesty = stabilize.Amnesty(res.Corruption, CorruptOccupancy)
		salt = corruptSalt(res.Corruption)
		if err := stabilize.Apply(r, res.Corruption); err != nil {
			// Unreachable: resolution reduces every pick into the declared
			// space and the runner has not executed an operation yet.
			return res
		}
	}

	submits := 0
	for _, op := range in.Ops {
		switch op.Kind {
		case OpSubmit:
			r.SubmitMsg("m" + strconv.Itoa(submits))
			submits++
		case OpTransmit:
			r.StepTransmit()
		case OpDrain:
			r.DrainAcks()
		case OpStale:
			ch := r.ChData
			if op.Dir == ioa.RtoT {
				ch = r.ChAck
			}
			pkts := ch.Packets()
			if len(pkts) == 0 {
				continue
			}
			p := pkts[int(op.Pick)%len(pkts)]
			if err := r.DeliverStale(op.Dir, p); err != nil {
				// Unreachable: the pick came from the live in-transit set.
				continue
			}
			res.StaleHits++
		}
		res.Points = append(res.Points, point(r.JointState())^salt)
	}

	run := r.Result()
	if in.Corrupt != nil {
		// Corrupted runs answer to the amnesty judge: faults within the
		// corruption's budget are the stabilization latitude, faults beyond
		// it are the violation. The clean-start checkers would flag the very
		// first bought fault and tell us nothing about convergence.
		j := stabilize.JudgeTrace(run.Trace, res.Amnesty)
		res.Verdict, res.Charges = j.Violation, j.Charges
		if j.Violation == nil {
			q := stabilize.JudgeQuiescent(run.Trace, res.Amnesty)
			res.DL3, res.Charges = q.Violation, q.Charges
		}
	} else {
		if err := ioa.CheckSafety(run.Trace); err != nil {
			res.Verdict, _ = ioa.AsViolation(err)
		}
		if err := ioa.CheckDL3Quiescent(run.Trace); err != nil {
			res.DL3, _ = ioa.AsViolation(err)
		}
	}
	if withLog {
		// Mirror replay's verdict priority: safety wins, else the quiescent
		// DL3 miss (so promoted livelock traces carry their liveness claim).
		ve := trace.Event{Kind: trace.KindVerdict}
		switch {
		case res.Verdict != nil:
			ve.Property, ve.Index, ve.Detail = res.Verdict.Property, res.Verdict.Index, res.Verdict.Detail
		case res.DL3 != nil:
			ve.Property, ve.Index, ve.Detail = res.DL3.Property, res.DL3.Index, res.DL3.Detail
		}
		tlog.Emit(ve)
		res.Log = tlog
	}
	return res
}

// Trim returns the input with unconsumed decision-stream tails removed, as
// measured by the execution res. Trimming changes nothing about the
// execution (unread decisions decide nothing) but keeps corpus genotypes at
// their live length, so mutation energy lands on bytes that matter.
func Trim(in *Input, res *ExecResult) *Input {
	if res.DataUsed >= len(in.Data) && res.AckUsed >= len(in.Ack) {
		return in
	}
	c := in.Clone()
	if res.DataUsed < len(c.Data) {
		c.Data = c.Data[:res.DataUsed]
	}
	if res.AckUsed < len(c.Ack) {
		c.Ack = c.Ack[:res.AckUsed]
	}
	return c
}
