// Package fuzz is a corpus-based, coverage-guided fuzzer for protocol ×
// channel state spaces.
//
// Its inputs are exactly the repo's replayable nondeterminism: a *channel
// decision stream* per direction (the trace/channel.FromDecisions format)
// plus the driver operation schedule that consumes it — submits, transmitter
// steps, ack drains, and stale re-deliveries of in-transit copies. Because
// PR 1 made every source of model nondeterminism a recorded decision, any
// byte-level mutation of such an input is still a *sound* candidate
// execution: the executor re-drives it deterministically and whatever the
// checkers say about the resulting trace is true of a real execution, not of
// a speculative edit.
//
// The coverage signal is the set of joint endpoint configurations — hashes
// of (StateKey_t, StateKey_r) with log-bucketed per-channel occupancy —
// observed after each operation. Inputs that reach a new joint state enter
// the corpus; inputs whose execution violates a checked property (PL1, DL1,
// DL2, DL3-quiescent) are promoted: re-recorded as a standard NFT trace,
// minimised with internal/replay's shrinker, and written out as a
// first-class replayable violation certificate.
//
// The scheduler (see fuzz.go) is a parallel worker pool with a single
// corpus-merger goroutine; cmd/nffuzz is the command-line surface.
package fuzz

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/ioa"
	"repro/internal/trace"
)

// OpKind identifies one driver operation of an input's schedule. The values
// deliberately mirror the trace operation kinds; an input is a compressed
// form of the operation strand of a trace.Log.
type OpKind uint8

const (
	// OpSubmit hands the next message to the transmitter.
	OpSubmit OpKind = iota + 1
	// OpTransmit performs one transmitter output step; the data channel's
	// decision stream rules on the sent packet.
	OpTransmit
	// OpDrain drains every enabled receiver output through the ack channel.
	OpDrain
	// OpStale re-delivers one delayed in-transit copy, chosen by Pick among
	// the distinct packets currently on the channel selected by Dir. With
	// nothing in transit the operation is a no-op — mutation never has to
	// know what will be in flight to produce a feasible schedule.
	OpStale
)

func (k OpKind) String() string {
	switch k {
	case OpSubmit:
		return "submit"
	case OpTransmit:
		return "transmit"
	case OpDrain:
		return "drain"
	case OpStale:
		return "stale"
	default:
		return fmt.Sprintf("op(%d)", uint8(k))
	}
}

// Op is one schedule entry. Dir and Pick are meaningful only for OpStale.
type Op struct {
	Kind OpKind
	// Dir selects the channel for OpStale: ioa.TtoR or ioa.RtoT.
	Dir ioa.Dir
	// Pick indexes (mod the in-transit count) the distinct packet to
	// re-deliver.
	Pick uint8
}

// Input is the fuzzer's genotype: an operation schedule plus one recorded
// decision stream per channel, plus an optional corrupted-start gene.
// Decisions are consumed in send order; when a stream runs dry the executor
// falls back to Delay, exactly as replay does.
type Input struct {
	Ops  []Op
	Data []trace.Decision
	Ack  []trace.Decision
	// Corrupt, when non-nil, selects a corrupted initial configuration from
	// the protocol's declared corruption space (see corrupt.go); the executor
	// applies it before the schedule and judges the run under its amnesty.
	Corrupt *CorruptGene
}

// Clone returns an independent deep copy.
func (in *Input) Clone() *Input {
	c := &Input{
		Ops:     make([]Op, len(in.Ops)),
		Data:    make([]trace.Decision, len(in.Data)),
		Ack:     make([]trace.Decision, len(in.Ack)),
		Corrupt: in.Corrupt.clone(),
	}
	copy(c.Ops, in.Ops)
	copy(c.Data, in.Data)
	copy(c.Ack, in.Ack)
	return c
}

// Len reports the schedule length.
func (in *Input) Len() int { return len(in.Ops) }

// String renders a compact summary for logs and stats lines.
func (in *Input) String() string {
	if in.Corrupt != nil {
		return fmt.Sprintf("input{ops=%d data=%d ack=%d corrupt=t%d.r%d+%d/%d}",
			len(in.Ops), len(in.Data), len(in.Ack),
			in.Corrupt.TPick, in.Corrupt.RPick, len(in.Corrupt.Data), len(in.Corrupt.Ack))
	}
	return fmt.Sprintf("input{ops=%d data=%d ack=%d}", len(in.Ops), len(in.Data), len(in.Ack))
}

// Serialization limits. Decode rejects anything larger: corpus files are
// minimized executions, not bulk data, and the caps keep a corrupted or
// hostile file from ballooning memory.
const (
	// MaxOps caps the schedule length of a decodable input.
	MaxOps = 4096
	// MaxDecisions caps each decision stream's length.
	MaxDecisions = 8192
)

const (
	inputMagic = "NFZI"
	// inputVersionV1 is the original format: ops and decision streams only.
	inputVersionV1 = 1
	// inputVersionV2 appends the corrupted-start gene section. Encode stamps
	// it only when the input carries a gene, so gene-free inputs are
	// byte-identical to what a v1 writer produced — existing corpus
	// directories keep their content-addressed names, and a pre-corruption
	// reader only ever rejects files that actually use the new feature.
	inputVersionV2 = 2
)

// ErrInputFormat is wrapped by all Decode errors.
var ErrInputFormat = errors.New("fuzz: bad input encoding")

// Encode serializes the input in the NFZI binary format:
//
//	magic "NFZI" (4) | version (1)
//	uvarint nops  | nops × (kind, dir, pick)
//	uvarint ndata | ndata × decision
//	uvarint nack  | nack  × decision
//	-- version 2 only (present iff the input carries a corruption gene) --
//	tpick (1) | rpick (1)
//	uvarint ndatapoison | picks
//	uvarint nackpoison  | picks
func (in *Input) Encode() []byte {
	b := make([]byte, 0, 5+3*len(in.Ops)+len(in.Data)+len(in.Ack)+16)
	b = append(b, inputMagic...)
	if in.Corrupt == nil {
		b = append(b, inputVersionV1)
	} else {
		b = append(b, inputVersionV2)
	}
	b = binary.AppendUvarint(b, uint64(len(in.Ops)))
	for _, op := range in.Ops {
		b = append(b, byte(op.Kind), byte(op.Dir), op.Pick)
	}
	b = binary.AppendUvarint(b, uint64(len(in.Data)))
	for _, d := range in.Data {
		b = append(b, byte(d))
	}
	b = binary.AppendUvarint(b, uint64(len(in.Ack)))
	for _, d := range in.Ack {
		b = append(b, byte(d))
	}
	if g := in.Corrupt; g != nil {
		b = append(b, g.TPick, g.RPick)
		b = binary.AppendUvarint(b, uint64(len(g.Data)))
		b = append(b, g.Data...)
		b = binary.AppendUvarint(b, uint64(len(g.Ack)))
		b = append(b, g.Ack...)
	}
	return b
}

// Decode parses an NFZI input, validating every field; arbitrary bytes
// produce an error wrapping ErrInputFormat, never a panic and never an
// out-of-range genotype.
func Decode(b []byte) (*Input, error) {
	if len(b) < len(inputMagic)+1 {
		return nil, fmt.Errorf("%w: truncated header", ErrInputFormat)
	}
	if string(b[:len(inputMagic)]) != inputMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrInputFormat, b[:len(inputMagic)])
	}
	version := b[len(inputMagic)]
	if version != inputVersionV1 && version != inputVersionV2 {
		return nil, fmt.Errorf("%w: unsupported version %d (this reader handles %d and %d)",
			ErrInputFormat, version, inputVersionV1, inputVersionV2)
	}
	b = b[len(inputMagic)+1:]

	nops, n := binary.Uvarint(b)
	if n <= 0 || nops > MaxOps {
		return nil, fmt.Errorf("%w: bad op count", ErrInputFormat)
	}
	b = b[n:]
	if uint64(len(b)) < 3*nops {
		return nil, fmt.Errorf("%w: truncated ops", ErrInputFormat)
	}
	in := &Input{Ops: make([]Op, nops)}
	for i := range in.Ops {
		op := Op{Kind: OpKind(b[0]), Dir: ioa.Dir(b[1]), Pick: b[2]}
		b = b[3:]
		switch op.Kind {
		case OpSubmit, OpTransmit, OpDrain:
			if op.Dir != 0 || op.Pick != 0 {
				return nil, fmt.Errorf("%w: op %d: %s carries stale operands", ErrInputFormat, i, op.Kind)
			}
		case OpStale:
			if op.Dir != ioa.TtoR && op.Dir != ioa.RtoT {
				return nil, fmt.Errorf("%w: op %d: bad stale direction %d", ErrInputFormat, i, int(op.Dir))
			}
		default:
			return nil, fmt.Errorf("%w: op %d: unknown kind %d", ErrInputFormat, i, uint8(op.Kind))
		}
		in.Ops[i] = op
	}

	for _, stream := range []*[]trace.Decision{&in.Data, &in.Ack} {
		cnt, n := binary.Uvarint(b)
		if n <= 0 || cnt > MaxDecisions {
			return nil, fmt.Errorf("%w: bad decision count", ErrInputFormat)
		}
		b = b[n:]
		if uint64(len(b)) < cnt {
			return nil, fmt.Errorf("%w: truncated decisions", ErrInputFormat)
		}
		s := make([]trace.Decision, cnt)
		for i := range s {
			d := trace.Decision(b[i])
			if d != trace.DeliverNow && d != trace.Delay && d != trace.Drop {
				return nil, fmt.Errorf("%w: decision %d: unknown verdict %d", ErrInputFormat, i, b[i])
			}
			s[i] = d
		}
		*stream = s
		b = b[cnt:]
	}
	if version == inputVersionV2 {
		if len(b) < 2 {
			return nil, fmt.Errorf("%w: truncated corruption gene", ErrInputFormat)
		}
		g := &CorruptGene{TPick: b[0], RPick: b[1]}
		b = b[2:]
		for _, picks := range []*[]uint8{&g.Data, &g.Ack} {
			cnt, n := binary.Uvarint(b)
			if n <= 0 || cnt > MaxPoisonGenes {
				return nil, fmt.Errorf("%w: bad poison pick count", ErrInputFormat)
			}
			b = b[n:]
			if uint64(len(b)) < cnt {
				return nil, fmt.Errorf("%w: truncated poison picks", ErrInputFormat)
			}
			*picks = append([]uint8(nil), b[:cnt]...)
			b = b[cnt:]
		}
		in.Corrupt = g
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrInputFormat, len(b))
	}
	return in, nil
}
