package fuzz

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/protocol"
	"repro/internal/replay"
	"repro/internal/stabilize"
	"repro/internal/trace"
)

// TestCorruptGeneCodecRoundTrip round-trips a v2 (gene-carrying) input and
// pins the version gating: a gene-free input must encode byte-identically to
// the v1 format, so existing corpus directories keep their content-addressed
// names after this reader upgrade.
func TestCorruptGeneCodecRoundTrip(t *testing.T) {
	in := &Input{
		Ops:     []Op{{Kind: OpSubmit}, {Kind: OpTransmit}},
		Data:    []trace.Decision{trace.Delay},
		Ack:     []trace.Decision{trace.DeliverNow},
		Corrupt: &CorruptGene{TPick: 3, RPick: 200, Data: []uint8{7, 7, 250}, Ack: []uint8{1}},
	}
	enc := in.Encode()
	if enc[4] != inputVersionV2 {
		t.Fatalf("gene-carrying input stamped version %d, want %d", enc[4], inputVersionV2)
	}
	out, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !bytes.Equal(out.Encode(), enc) {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
	if out.Corrupt == nil || out.Corrupt.TPick != 3 || out.Corrupt.RPick != 200 ||
		len(out.Corrupt.Data) != 3 || len(out.Corrupt.Ack) != 1 {
		t.Fatalf("gene did not survive the round trip: %+v", out.Corrupt)
	}

	clean := in.Clone()
	clean.Corrupt = nil
	if got := clean.Encode(); got[4] != inputVersionV1 {
		t.Fatalf("gene-free input stamped version %d, want %d", got[4], inputVersionV1)
	}
}

// TestCorruptGeneVersionSkew pins the version-skew story both ways: a reader
// that predates the gene (simulated by re-stamping a v2 file as v1) rejects
// the gene bytes as trailing garbage instead of misparsing them, and an
// unknown future version is rejected by name.
func TestCorruptGeneVersionSkew(t *testing.T) {
	in := &Input{
		Ops:     []Op{{Kind: OpSubmit}},
		Corrupt: &CorruptGene{Data: []uint8{1}},
	}
	enc := in.Encode()

	asV1 := append([]byte(nil), enc...)
	asV1[4] = inputVersionV1
	if _, err := Decode(asV1); err == nil {
		t.Fatalf("v1 reader parse of gene bytes succeeded; want trailing-bytes rejection")
	} else if !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("v1 reader rejected gene bytes with %v; want a trailing-bytes error", err)
	}

	future := append([]byte(nil), enc...)
	future[4] = 9
	if _, err := Decode(future); err == nil || !strings.Contains(err.Error(), "unsupported version 9") {
		t.Fatalf("future version not rejected clearly: %v", err)
	}

	tooMany := &Input{Ops: []Op{{Kind: OpSubmit}}, Corrupt: &CorruptGene{Data: make([]uint8, MaxPoisonGenes+1)}}
	if _, err := Decode(tooMany.Encode()); err == nil {
		t.Fatalf("over-cap poison pick count accepted")
	}
}

// TestResolveCorruption pins gene resolution: picks reduce modulo the space,
// multisets canonicalize (sorted), and non-Corruptible protocols resolve
// everything to the clean start.
func TestResolveCorruption(t *testing.T) {
	var p protocol.Protocol = protocol.NewStabNaive()
	cp, ok := p.(protocol.Corruptible)
	if !ok {
		t.Fatalf("stabnaive is not Corruptible")
	}
	space := cp.Corruptions()

	g := &CorruptGene{
		TPick: uint8(len(space.Transmitters)), // mod → 0
		RPick: 1,
		Data:  []uint8{uint8(len(space.DataPoison)), 0}, // both mod → 0
		Ack:   []uint8{1, 0},                            // unsorted picks
	}
	c := resolveCorruption(p, g)
	if c.TIdx != 0 {
		t.Fatalf("TPick did not reduce modulo the space: %d", c.TIdx)
	}
	if c.RIdx != 1%len(space.Receivers) {
		t.Fatalf("RIdx = %d", c.RIdx)
	}
	if len(c.Data) != 2 || c.Data[0] != space.DataPoison[0] || c.Data[1] != space.DataPoison[0] {
		t.Fatalf("data poison resolution: %+v", c.Data)
	}
	// Gene order must not matter: the resolved multiset is canonical.
	rev := &CorruptGene{TPick: g.TPick, RPick: g.RPick, Data: []uint8{0, uint8(len(space.DataPoison))}, Ack: []uint8{0, 1}}
	if resolveCorruption(p, rev).Key() != c.Key() {
		t.Fatalf("pick order changed the resolved corruption key")
	}

	if got := resolveCorruption(protocol.NewSeqNum(), g); !got.Clean() {
		t.Fatalf("non-Corruptible protocol resolved to %s, want clean", got)
	}
}

// TestExecuteCorruptedJudgesByAmnesty pins the executor's corrupted-run
// semantics: the same schedule is safety-clean from a clean start, and its
// corrupted twin is judged by the amnesty judge (with the corruption and
// budget reported), not the clean-start checkers. Coverage points must be
// salted apart — a corrupted orbit is not the clean orbit.
func TestExecuteCorruptedJudgesByAmnesty(t *testing.T) {
	p := protocol.NewStabNaive()
	in := SeedInputs()[0]
	clean := Execute(p, in, false)
	if clean.Verdict != nil {
		t.Fatalf("benign seed violates %v from a clean start", clean.Verdict)
	}

	corrupted := in.Clone()
	corrupted.Corrupt = &CorruptGene{Data: []uint8{0}}
	res := Execute(p, corrupted, false)
	if res.Corruption.Clean() {
		t.Fatalf("gene resolved to the clean start")
	}
	if res.Amnesty != stabilize.Amnesty(res.Corruption, CorruptOccupancy) {
		t.Fatalf("amnesty %d not derived from the resolved corruption", res.Amnesty)
	}
	if len(res.Points) != len(clean.Points) {
		t.Fatalf("corrupted run has %d points, clean %d", len(res.Points), len(clean.Points))
	}
	same := 0
	for i := range res.Points {
		if res.Points[i] == clean.Points[i] {
			same++
		}
	}
	if same == len(res.Points) {
		t.Fatalf("corrupted coverage points identical to clean ones (salt missing)")
	}
}

// TestMutateCorruptFeasibility: every gene the mutator can produce stays
// within the codec caps, round-trips, and resolves for every protocol.
func TestMutateCorruptFeasibility(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	in := SeedInputs()[0].Clone()
	for i := 0; i < 2000; i++ {
		MutateCorrupt(in, rng)
		if g := in.Corrupt; g != nil {
			if len(g.Data) > MaxPoisonGenes || len(g.Ack) > MaxPoisonGenes {
				t.Fatalf("iteration %d: gene exceeds poison cap: %+v", i, g)
			}
		}
		if _, err := Decode(in.Encode()); err != nil {
			t.Fatalf("iteration %d: mutated input not decodable: %v", i, err)
		}
		resolveCorruption(protocol.NewStabNaive(), in.Corrupt)
		resolveCorruption(protocol.NewSeqNum(), in.Corrupt)
	}
}

// TestCorruptFindsStabNaiveDivergence is the acceptance test for the
// corrupted-start dimension: fuzzing stabnaive — which is clean-start
// correct, so the clean campaign finds nothing — with -corrupt semantics
// must rediscover an over-amnesty divergence from benign seeds, and the
// promoted certificate must replay divergence-free and re-judge to the same
// property under the amnesty recorded in its metadata.
func TestCorruptFindsStabNaiveDivergence(t *testing.T) {
	out := t.TempDir()
	res, err := Run(Config{
		Protocol:        protocol.NewStabNaive(),
		Workers:         1,
		Budget:          30000,
		Seed:            1,
		OutDir:          out,
		Corrupt:         true,
		StopOnViolation: true,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var v *Violation
	for _, got := range res.Violations {
		if got.Corruption != "" {
			v = got
		}
	}
	if v == nil {
		t.Fatalf("no corrupted-start violation in %d execs (violations: %v)", res.Execs, res.Violations)
	}
	if v.Path == "" {
		t.Fatalf("corrupted-start violation has no certificate file")
	}
	l, err := trace.ReadFile(v.Path)
	if err != nil {
		t.Fatalf("reading certificate: %v", err)
	}
	if l.Meta[stabilize.MetaCorruption] != v.Corruption {
		t.Fatalf("certificate metadata corruption %q, violation %q", l.Meta[stabilize.MetaCorruption], v.Corruption)
	}
	rr, err := replay.Run(l)
	if err != nil {
		t.Fatalf("replaying certificate: %v", err)
	}
	if rr.Divergence != nil {
		t.Fatalf("certificate replay diverged: %v", rr.Divergence)
	}
	j := stabilize.JudgeTrace(rr.Trace, mustAtoi(t, l.Meta[stabilize.MetaAmnesty]))
	if j.Violation == nil || j.Violation.Property != v.Property {
		t.Fatalf("certificate re-judges to %v, want %s", j.Violation, v.Property)
	}
	t.Logf("stabnaive %s from %s found after %d execs (amnesty %s, %d charges)",
		v.Property, v.Corruption, res.Execs, l.Meta[stabilize.MetaAmnesty], j.Charges)
}

func mustAtoi(t *testing.T, s string) int {
	t.Helper()
	n := 0
	for _, r := range s {
		if r < '0' || r > '9' {
			t.Fatalf("not a number: %q", s)
		}
		n = n*10 + int(r-'0')
	}
	return n
}
