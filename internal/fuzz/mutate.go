package fuzz

import (
	"math/rand"

	"repro/internal/ioa"
	"repro/internal/trace"
)

// Mutation operators. Each takes a parent genotype and a worker-local RNG
// and returns a fresh candidate; parents are never modified in place (they
// are shared across workers through corpus snapshots).
//
// The operator set mirrors the structure of the search space:
//
//   - decision flips explore the channel behaviour lattice
//     (deliver/delay/drop per send);
//   - op insertion/removal/truncation/extension explore the schedule;
//   - stale splicing is the paper's replay move — it is its own operator
//     because almost every interesting violation needs one;
//   - crossover recombines two corpus entries, which is how a "strand
//     copies" prefix from one input meets a "re-deliver late" suffix from
//     another.

var decisions = [...]trace.Decision{trace.DeliverNow, trace.Delay, trace.Drop}

func randDecision(rng *rand.Rand) trace.Decision { return decisions[rng.Intn(len(decisions))] }

func randOp(rng *rand.Rand) Op {
	switch rng.Intn(10) {
	case 0, 1:
		return Op{Kind: OpSubmit}
	case 2, 3, 4:
		return Op{Kind: OpTransmit}
	case 5, 6:
		return Op{Kind: OpDrain}
	default:
		return randStale(rng)
	}
}

func randStale(rng *rand.Rand) Op {
	dir := ioa.TtoR
	if rng.Intn(4) == 0 { // stale acks matter less often; bias toward data
		dir = ioa.RtoT
	}
	return Op{Kind: OpStale, Dir: dir, Pick: uint8(rng.Intn(8))}
}

// capOps enforces MaxOps/MaxDecisions after growth operators.
func capInput(in *Input) *Input {
	if len(in.Ops) > MaxOps {
		in.Ops = in.Ops[:MaxOps]
	}
	if len(in.Data) > MaxDecisions {
		in.Data = in.Data[:MaxDecisions]
	}
	if len(in.Ack) > MaxDecisions {
		in.Ack = in.Ack[:MaxDecisions]
	}
	return in
}

// Mutate derives a candidate from parent by applying 1–3 randomly chosen
// operators.
func Mutate(parent *Input, rng *rand.Rand) *Input {
	c := parent.Clone()
	for n := 1 + rng.Intn(3); n > 0; n-- {
		c = mutateOnce(c, rng)
	}
	if len(c.Ops) == 0 {
		c.Ops = append(c.Ops, Op{Kind: OpSubmit}, Op{Kind: OpTransmit})
	}
	return capInput(c)
}

// mutator is one named mutation operator. Operators mutate the candidate in
// place (callers pass clones) and draw from the worker RNG; the table order
// is part of the campaign determinism contract — reordering or renumbering
// it changes every seeded campaign's trajectory.
type mutator struct {
	name  string
	apply func(c *Input, rng *rand.Rand)
}

var mutators = [...]mutator{
	{"flip-decision", opFlipDecision},
	{"insert-op", opInsertOp},
	{"remove-op", opRemoveOp},
	{"splice-stale", opSpliceStale},
	{"truncate-tail", opTruncateTail},
	{"extend-ops", opExtendOps},
	{"extend-decisions", opExtendDecisions},
	{"duplicate-segment", opDuplicateSegment},
}

func mutateOnce(c *Input, rng *rand.Rand) *Input {
	mutators[rng.Intn(len(mutators))].apply(c, rng)
	return c
}

// opFlipDecision rewrites one channel decision (growing an empty stream).
func opFlipDecision(c *Input, rng *rand.Rand) {
	flipDecision(c, rng)
}

// opInsertOp inserts a random op at a random position.
func opInsertOp(c *Input, rng *rand.Rand) {
	i := rng.Intn(len(c.Ops) + 1)
	c.Ops = append(c.Ops[:i], append([]Op{randOp(rng)}, c.Ops[i:]...)...)
}

// opRemoveOp removes one op.
func opRemoveOp(c *Input, rng *rand.Rand) {
	if len(c.Ops) > 0 {
		i := rng.Intn(len(c.Ops))
		c.Ops = append(c.Ops[:i], c.Ops[i+1:]...)
	}
}

// opSpliceStale splices a stale re-delivery — the paper's replay move.
func opSpliceStale(c *Input, rng *rand.Rand) {
	i := rng.Intn(len(c.Ops) + 1)
	c.Ops = append(c.Ops[:i], append([]Op{randStale(rng)}, c.Ops[i:]...)...)
}

// opTruncateTail truncates the schedule tail.
func opTruncateTail(c *Input, rng *rand.Rand) {
	if len(c.Ops) > 1 {
		c.Ops = c.Ops[:1+rng.Intn(len(c.Ops)-1)]
	}
}

// opExtendOps extends the schedule with a random block.
func opExtendOps(c *Input, rng *rand.Rand) {
	for n := 1 + rng.Intn(6); n > 0; n-- {
		c.Ops = append(c.Ops, randOp(rng))
	}
}

// opExtendDecisions extends a decision stream.
func opExtendDecisions(c *Input, rng *rand.Rand) {
	for n := 1 + rng.Intn(4); n > 0; n-- {
		if rng.Intn(2) == 0 {
			c.Data = append(c.Data, randDecision(rng))
		} else {
			c.Ack = append(c.Ack, randDecision(rng))
		}
	}
}

// opDuplicateSegment duplicates a schedule segment (pumping-style repetition).
func opDuplicateSegment(c *Input, rng *rand.Rand) {
	if len(c.Ops) > 0 {
		i := rng.Intn(len(c.Ops))
		j := i + 1 + rng.Intn(len(c.Ops)-i)
		seg := append([]Op(nil), c.Ops[i:j]...)
		c.Ops = append(c.Ops[:j], append(seg, c.Ops[j:]...)...)
	}
}

func flipDecision(c *Input, rng *rand.Rand) {
	// Pick uniformly across both streams; grow an empty one instead.
	total := len(c.Data) + len(c.Ack)
	if total == 0 {
		c.Data = append(c.Data, randDecision(rng))
		return
	}
	i := rng.Intn(total)
	if i < len(c.Data) {
		c.Data[i] = randDecision(rng)
	} else {
		c.Ack[i-len(c.Data)] = randDecision(rng)
	}
}

// Crossover splices a prefix of a onto a suffix of b, recombining both
// schedules and both decision streams at independent cut points.
func Crossover(a, b *Input, rng *rand.Rand) *Input {
	cut := func(x, y []Op) []Op {
		i, j := 0, 0
		if len(x) > 0 {
			i = rng.Intn(len(x) + 1)
		}
		if len(y) > 0 {
			j = rng.Intn(len(y) + 1)
		}
		out := make([]Op, 0, i+len(y)-j)
		out = append(out, x[:i]...)
		return append(out, y[j:]...)
	}
	cutD := func(x, y []trace.Decision) []trace.Decision {
		i, j := 0, 0
		if len(x) > 0 {
			i = rng.Intn(len(x) + 1)
		}
		if len(y) > 0 {
			j = rng.Intn(len(y) + 1)
		}
		out := make([]trace.Decision, 0, i+len(y)-j)
		out = append(out, x[:i]...)
		return append(out, y[j:]...)
	}
	// The corrupted-start gene rides with the first parent: a corruption is
	// a property of the whole run (it happens before op 0), so splicing two
	// genes has no schedule-level meaning the way splicing ops does.
	c := &Input{Ops: cut(a.Ops, b.Ops), Data: cutD(a.Data, b.Data), Ack: cutD(a.Ack, b.Ack), Corrupt: a.Corrupt.clone()}
	if len(c.Ops) == 0 {
		c.Ops = append(c.Ops, Op{Kind: OpSubmit}, Op{Kind: OpTransmit})
	}
	return capInput(c)
}

// SeedInputs returns the initial corpus for any protocol: a handful of plain
// schedules (submit/transmit/drain cycles under all-deliver, all-delay and
// mixed decisions) that exercise the happy path and strand some copies. The
// fuzzer's job is to take it from there; nothing protocol-specific is baked
// in.
func SeedInputs() []*Input {
	cycle := func(msgs, steps int) []Op {
		var ops []Op
		for m := 0; m < msgs; m++ {
			ops = append(ops, Op{Kind: OpSubmit})
			for s := 0; s < steps; s++ {
				ops = append(ops, Op{Kind: OpTransmit}, Op{Kind: OpDrain})
			}
		}
		return ops
	}
	rep := func(d trace.Decision, n int) []trace.Decision {
		s := make([]trace.Decision, n)
		for i := range s {
			s[i] = d
		}
		return s
	}
	return []*Input{
		// Reliable delivery, three messages: the baseline joint-state orbit.
		{Ops: cycle(3, 2), Data: rep(trace.DeliverNow, 8), Ack: rep(trace.DeliverNow, 8)},
		// Delay everything: pure in-transit accumulation.
		{Ops: cycle(2, 3), Data: rep(trace.Delay, 8), Ack: rep(trace.Delay, 8)},
		// Delay the first data copy then deliver the rest: progress with one
		// copy stranded. No stale re-delivery — composing a strand with a
		// later re-delivery is exactly what the fuzzer must discover.
		{
			Ops:  cycle(2, 2),
			Data: append([]trace.Decision{trace.Delay}, rep(trace.DeliverNow, 7)...),
			Ack:  rep(trace.DeliverNow, 8),
		},
	}
}
