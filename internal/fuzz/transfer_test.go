package fuzz

import (
	"path/filepath"
	"testing"

	"repro/internal/protocol"
)

// Cross-protocol corpus transfer: schedules discovered while fuzzing one
// protocol encode channel-behaviour structure (strand a copy, accumulate
// in-transit duplicates, re-deliver late) that carries over to other
// protocols even though the endpoint state spaces differ. The test distills
// an altbit corpus against cheat1 and seeds a cheat1 campaign with the
// survivors; discovery must get cheaper than from benign seeds alone.
//
// Everything is seed-pinned: altbit source campaign at seed 1, cheat1 target
// campaigns at seed 7 (chosen as a slow benign-discovery seed so the
// comparison has headroom — benign discovery takes ~75 execs there).

func TestDistillGreedySetCover(t *testing.T) {
	srcDir := filepath.Join(t.TempDir(), "altbit-corpus")
	if _, err := Run(Config{
		Protocol: protocol.NewAltBit(), Workers: 1, Budget: 1000, Seed: 1,
		CorpusDir: srcDir,
	}); err != nil {
		t.Fatalf("source campaign: %v", err)
	}
	inputs, err := LoadCorpus(srcDir)
	if err != nil {
		t.Fatalf("LoadCorpus: %v", err)
	}
	if len(inputs) == 0 {
		t.Fatal("source campaign admitted nothing")
	}
	distilled := Distill(protocol.NewCheat(1), inputs)
	if len(distilled) == 0 {
		t.Fatal("distillation kept nothing")
	}
	if len(distilled) > len(inputs) {
		t.Fatalf("distillation grew the corpus: %d -> %d", len(inputs), len(distilled))
	}
	// Coverage parity: the distilled subset must reproduce the full set's
	// coverage on the target protocol — that is the set-cover invariant.
	coverOf := func(ins []*Input) coverSet {
		cs := make(coverSet)
		for _, in := range ins {
			cs.addAll(Execute(protocol.NewCheat(1), in, false).Points)
		}
		return cs
	}
	full, kept := coverOf(inputs), coverOf(distilled)
	if len(kept) != len(full) {
		t.Fatalf("distilled subset covers %d of %d target points", len(kept), len(full))
	}
	// And it must actually distill: identical coverage with fewer inputs.
	if len(distilled) == len(inputs) {
		t.Fatalf("distillation removed nothing (%d inputs)", len(inputs))
	}
	t.Logf("distilled %d -> %d inputs, %d target coverage points",
		len(inputs), len(distilled), len(full))
}

func TestCorpusTransferSpeedsUpDiscovery(t *testing.T) {
	// Baseline: cheat1 from benign seeds only.
	baseline, err := Run(Config{
		Protocol: protocol.NewCheat(1), Workers: 1, Budget: 20000, Seed: 7,
		StopOnViolation: true,
	})
	if err != nil {
		t.Fatalf("baseline campaign: %v", err)
	}
	baseAt := findViolation(t, baseline, "DL1").FoundAtExec

	// Source: an altbit campaign's corpus, distilled against cheat1.
	srcDir := filepath.Join(t.TempDir(), "altbit-corpus")
	if _, err := Run(Config{
		Protocol: protocol.NewAltBit(), Workers: 1, Budget: 1000, Seed: 1,
		CorpusDir: srcDir,
	}); err != nil {
		t.Fatalf("source campaign: %v", err)
	}
	inputs, err := LoadCorpus(srcDir)
	if err != nil {
		t.Fatalf("LoadCorpus: %v", err)
	}
	seedDir := filepath.Join(t.TempDir(), "cheat1-seed")
	if err := SaveCorpus(seedDir, Distill(protocol.NewCheat(1), inputs)); err != nil {
		t.Fatalf("SaveCorpus: %v", err)
	}

	// Target: same campaign, seeded with the transferred corpus.
	seeded, err := Run(Config{
		Protocol: protocol.NewCheat(1), Workers: 1, Budget: 20000, Seed: 7,
		CorpusDir: seedDir, StopOnViolation: true,
	})
	if err != nil {
		t.Fatalf("seeded campaign: %v", err)
	}
	seededAt := findViolation(t, seeded, "DL1").FoundAtExec

	if seededAt >= baseAt {
		t.Fatalf("corpus transfer did not speed up discovery: seeded %d execs, benign %d",
			seededAt, baseAt)
	}
	t.Logf("cheat1 DL1: benign seeds %d execs, transferred corpus %d execs", baseAt, seededAt)
}

func findViolation(t *testing.T, res *Result, prop string) *Violation {
	t.Helper()
	for _, v := range res.Violations {
		if v.Property == prop {
			return v
		}
	}
	t.Fatalf("no %s violation found in %d execs", prop, res.Execs)
	return nil
}
