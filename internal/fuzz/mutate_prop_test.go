package fuzz

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/protocol"
)

// Property-based feasibility tests for the mutation operators: whatever an
// operator does to a valid genotype, the result must (1) survive the strict
// NFZI codec round trip, (2) respect the genotype caps after capInput, and
// (3) execute feasibly and deterministically — stale picks that reference
// nothing are no-ops by construction, so execution is total. Seeds are
// pinned; a failure message names the operator and the iteration.

// randomValidInput derives a random valid genotype by walking the mutation
// space from a seed input. Mutate's output is the definition of "valid
// genotype" in this fuzzer, so the walk is the right generator: operators
// must tolerate anything their own composition can produce.
func randomValidInput(rng *rand.Rand) *Input {
	in := SeedInputs()[rng.Intn(len(SeedInputs()))].Clone()
	for n := rng.Intn(8); n > 0; n-- {
		in = Mutate(in, rng)
	}
	return in
}

// checkCandidate asserts the three feasibility properties on one candidate.
func checkCandidate(t *testing.T, label string, iter int, c *Input) {
	t.Helper()
	if len(c.Ops) > MaxOps || len(c.Data) > MaxDecisions || len(c.Ack) > MaxDecisions {
		t.Fatalf("%s iter %d: caps exceeded: %d ops, %d data, %d ack",
			label, iter, len(c.Ops), len(c.Data), len(c.Ack))
	}
	enc := c.Encode()
	out, err := Decode(enc)
	if err != nil {
		t.Fatalf("%s iter %d: mutant fails strict NFZI validation: %v", label, iter, err)
	}
	if !bytes.Equal(out.Encode(), enc) {
		t.Fatalf("%s iter %d: NFZI round trip not stable", label, iter)
	}
	a := Execute(protocol.NewAltBit(), c, false)
	b := Execute(protocol.NewAltBit(), c, false)
	if len(a.Points) != len(b.Points) {
		t.Fatalf("%s iter %d: nondeterministic execution: %d vs %d points",
			label, iter, len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("%s iter %d: nondeterministic coverage at %d", label, iter, i)
		}
	}
}

func TestMutatorTableIsComplete(t *testing.T) {
	if len(mutators) != 8 {
		t.Fatalf("mutator table has %d operators, want 8", len(mutators))
	}
	seen := make(map[string]bool)
	for _, m := range mutators {
		if m.name == "" || m.apply == nil {
			t.Fatalf("incomplete mutator entry %+v", m)
		}
		if seen[m.name] {
			t.Fatalf("duplicate mutator name %q", m.name)
		}
		seen[m.name] = true
	}
}

// TestEachOperatorPreservesFeasibility applies every operator in isolation
// to random valid inputs, wrapped the way Mutate wraps it (empty-schedule
// restore plus capInput), and checks the feasibility properties.
func TestEachOperatorPreservesFeasibility(t *testing.T) {
	for idx, m := range mutators {
		m := m
		rng := rand.New(rand.NewSource(int64(1000 + idx))) // pinned per operator
		t.Run(m.name, func(t *testing.T) {
			for i := 0; i < 250; i++ {
				c := randomValidInput(rng).Clone()
				m.apply(c, rng)
				if len(c.Ops) == 0 {
					c.Ops = append(c.Ops, Op{Kind: OpSubmit}, Op{Kind: OpTransmit})
				}
				checkCandidate(t, m.name, i, capInput(c))
			}
		})
	}
}

// TestMutatePreservesFeasibility exercises the composed path (1–3 stacked
// operators per call), which is what campaigns actually run.
func TestMutatePreservesFeasibility(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		c := Mutate(randomValidInput(rng), rng)
		if len(c.Ops) == 0 {
			t.Fatalf("iter %d: Mutate produced an empty schedule", i)
		}
		checkCandidate(t, "mutate", i, c)
	}
}

// TestCrossoverPreservesFeasibility recombines random pairs at random cut
// points; offspring must satisfy the same feasibility properties as mutants.
func TestCrossoverPreservesFeasibility(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 500; i++ {
		a, b := randomValidInput(rng), randomValidInput(rng)
		c := Crossover(a, b, rng)
		if len(c.Ops) == 0 {
			t.Fatalf("iter %d: Crossover produced an empty schedule", i)
		}
		checkCandidate(t, "crossover", i, c)
	}
}

// TestMutationDeterminism pins the RNG-consumption contract of the operator
// table: the same parent and the same seeded RNG must yield byte-identical
// mutants. Campaign reproducibility (same seed, same trajectory) rests on
// this — an operator that changed its RNG call order would silently fork
// every recorded campaign.
func TestMutationDeterminism(t *testing.T) {
	parent := randomValidInput(rand.New(rand.NewSource(7)))
	a, b := rand.New(rand.NewSource(99)), rand.New(rand.NewSource(99))
	for i := 0; i < 200; i++ {
		ma, mb := Mutate(parent, a), Mutate(parent, b)
		if !bytes.Equal(ma.Encode(), mb.Encode()) {
			t.Fatalf("iter %d: same seed produced different mutants", i)
		}
		parent = ma
	}
}
