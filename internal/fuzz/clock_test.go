package fuzz

import (
	"strings"
	"testing"
	"time"

	"repro/internal/protocol"
)

// fakeClock is a deterministic Config.Clock: every reading advances a fixed
// step, so campaign timing is a pure function of how often the campaign
// consults the clock.
type fakeClock struct {
	now  time.Time
	step time.Duration
}

func (c *fakeClock) read() time.Time {
	c.now = c.now.Add(c.step)
	return c.now
}

// TestInjectedClockMakesCampaignRecordsReproducible runs the same campaign
// twice with a fake clock and requires bit-identical timing output: the same
// Elapsed and the same stats stream. With time.Now this would be flaky by
// construction; the Clock seam is what makes campaign records reproducible.
func TestInjectedClockMakesCampaignRecordsReproducible(t *testing.T) {
	run := func() (time.Duration, string) {
		var stats strings.Builder
		clk := &fakeClock{now: time.Unix(0, 0), step: time.Second}
		res, err := Run(Config{
			Protocol: protocol.NewCntLinear(),
			Budget:   200,
			Seed:     7,
			Stats:    &stats,
			Clock:    clk.read,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed, stats.String()
	}

	elapsed1, stats1 := run()
	elapsed2, stats2 := run()
	if elapsed1 <= 0 {
		t.Fatalf("Elapsed = %v, want > 0 under the stepping fake clock", elapsed1)
	}
	if elapsed1 != elapsed2 {
		t.Errorf("Elapsed differs across identical campaigns: %v vs %v", elapsed1, elapsed2)
	}
	if stats1 == "" {
		t.Error("no stats output despite a stats writer and a 1s-stepping clock")
	}
	if stats1 != stats2 {
		t.Errorf("stats streams differ across identical campaigns:\n--- run 1 ---\n%s--- run 2 ---\n%s", stats1, stats2)
	}
}
