// Package explore is a bounded explicit-state model checker for data link
// protocols over non-FIFO channels.
//
// Where internal/adversary's replay search follows the specific attack
// schedules used in the paper's proofs, the explorer enumerates *every*
// interleaving of protocol steps and channel behaviours within configured
// bounds: message submissions, transmitter sends, receiver sends, and — for
// each in-transit packet — delivery or permanent loss, in any order. It
// either finds a shortest counterexample (a safety-violating execution,
// returned as a re-checkable certificate trace) or certifies the protocol
// safe within the bounds.
//
// The explorer is the reproduction's strongest adversary: the paper's
// channel nondeterminism, exhausted. The alternating bit protocol's
// non-FIFO unsafety falls out as a 14-event shortest counterexample; the
// naive and counting protocols verify safe across millions of explored
// states at the same bounds.
package explore

import (
	"errors"
	"fmt"

	"repro/internal/ioa"
	"repro/internal/protocol"
)

// Config bounds the exploration.
type Config struct {
	// Messages is the number of messages submitted to the transmitter
	// (payloads "m0", "m1", ...). Submission is itself a transition, so
	// the explorer considers every interleaving of submissions with
	// channel activity.
	Messages int
	// MaxDataSends caps send_pkt^{t→r} actions per execution; without a
	// cap the always-enabled retransmission makes the space infinite.
	MaxDataSends int
	// MaxAckSends caps send_pkt^{r→t} actions per execution.
	MaxAckSends int
	// AllowDrop additionally explores permanent loss of each in-transit
	// packet. Loss never helps an adversary hunting safety violations
	// (delivering nothing is always available by just not delivering),
	// so it defaults to off; it matters for the deadlock check.
	AllowDrop bool
	// MaxStates caps the number of distinct states explored.
	MaxStates int
	// CheckDeadlock additionally reports quiescent states in which
	// delivery can never complete: every message submitted, both channels
	// empty, the transmitter idle, and messages still undelivered. Such a
	// state is a permanent DL3 (liveness) violation — no extension of the
	// execution contains the missing receive_msg. The stale-ack aliasing
	// of the bounded sliding window protocols produces exactly this shape:
	// the sender slides past a segment the receiver never got.
	CheckDeadlock bool
	// FIFO explores the order-preserving channel discipline instead of
	// the paper's non-FIFO multiset: only the oldest packet on each
	// channel may be delivered or lost. Protocols like the alternating
	// bit protocol that fall over the non-FIFO channel verify safe here,
	// isolating reordering as the decisive channel property.
	FIFO bool
	// ConstantPayload uses the paper's all-messages-identical convention
	// instead of distinct payloads.
	ConstantPayload bool
}

func (c Config) withDefaults() Config {
	if c.Messages == 0 {
		c.Messages = 2
	}
	if c.MaxDataSends == 0 {
		c.MaxDataSends = 3 * c.Messages
	}
	if c.MaxAckSends == 0 {
		c.MaxAckSends = 3 * c.Messages
	}
	if c.MaxStates == 0 {
		c.MaxStates = 1 << 20
	}
	return c
}

// Report is the outcome of an exploration.
type Report struct {
	// Violation is non-nil if a safety-violating execution exists within
	// the bounds; Counterexample is its (shortest) trace.
	Violation      *ioa.Violation
	Counterexample ioa.Trace
	// States is the number of distinct states visited.
	States int
	// Transitions is the number of transitions taken.
	Transitions int
	// Exhausted reports that the full bounded space was covered (false if
	// MaxStates stopped the search first). Safe-within-bounds claims need
	// Exhausted && Violation == nil.
	Exhausted bool
}

// node is one reachable configuration.
type node struct {
	t         protocol.Transmitter
	r         protocol.Receiver
	chData    link
	chAck     link
	submitted int
	delivered []string
	parent    int       // index into the node arena; -1 for the root
	action    ioa.Event // action that produced this node
	hasAction bool
	dataSends int
	ackSends  int
}

// Explore runs the bounded search for the given protocol.
func Explore(p protocol.Protocol, cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	root, err := newRoot(p, cfg)
	if err != nil {
		return Report{}, err
	}

	var rep Report
	arena := []*node{root}
	queue := []int{0}
	seen := map[string]bool{key(root): true}

	for len(queue) > 0 {
		if len(arena) >= cfg.MaxStates {
			return rep, nil // not exhausted
		}
		idx := queue[0]
		queue = queue[1:]
		cur := arena[idx]

		succs := successors(p, cur, idx, cfg)
		// A genuine deadlock requires the transmitter to be idle (not
		// merely send-capped by the exploration bounds): an idle
		// transmitter with empty channels can never be woken again.
		if cfg.CheckDeadlock && len(succs) == 0 && cur.submitted == cfg.Messages &&
			!cur.t.Busy() && len(cur.delivered) < cur.submitted {
			rep.Violation = &ioa.Violation{
				Property: "DL3",
				Index:    -1,
				Detail: fmt.Sprintf("deadlock: %d of %d messages delivered, transmitter idle, "+
					"channels empty — no extension can deliver the rest",
					len(cur.delivered), cur.submitted),
			}
			rep.Counterexample = rebuild(arena, cur)
			rep.States = len(arena)
			return rep, nil
		}
		for _, s := range succs {
			rep.Transitions++
			if v := violates(s, cfg); v != nil {
				rep.Violation = v
				rep.Counterexample = rebuild(arena, s)
				rep.States = len(arena)
				return rep, nil
			}
			k := key(s)
			if seen[k] {
				continue
			}
			seen[k] = true
			arena = append(arena, s)
			queue = append(queue, len(arena)-1)
		}
	}
	rep.States = len(arena)
	rep.Exhausted = true
	return rep, nil
}

// errHeadMismatch guards the FIFO link against deliveries of anything but
// the head (impossible when driven through deliverable()).
var errHeadMismatch = errors.New("explore: FIFO delivery of a non-head packet")

func newRoot(p protocol.Protocol, cfg Config) (*node, error) {
	var chData, chAck link
	if cfg.FIFO {
		chData, chAck = newFifoLink(ioa.TtoR), newFifoLink(ioa.RtoT)
	} else {
		chData, chAck = newMsetLink(ioa.TtoR), newMsetLink(ioa.RtoT)
	}
	t, r := p.New(linkGenie{l: chData}, linkGenie{l: chAck})
	if t == nil || r == nil {
		return nil, errors.New("explore: protocol returned nil endpoints")
	}
	return &node{t: t, r: r, chData: chData, chAck: chAck, parent: -1}, nil
}

// clone duplicates a node, rebinding channel genies to the copies.
func (n *node) clone() *node {
	c := &node{
		t:         n.t.Clone(),
		r:         n.r.Clone(),
		chData:    n.chData.clone(),
		chAck:     n.chAck.clone(),
		submitted: n.submitted,
		delivered: append([]string(nil), n.delivered...),
		dataSends: n.dataSends,
		ackSends:  n.ackSends,
	}
	if tg, ok := c.t.(protocol.AckGenieUser); ok {
		tg.SetAckGenie(linkGenie{l: c.chAck})
	}
	if rg, ok := c.r.(protocol.DataGenieUser); ok {
		rg.SetDataGenie(linkGenie{l: c.chData})
	}
	return c
}

func payload(cfg Config, i int) string {
	if cfg.ConstantPayload {
		return "m"
	}
	return fmt.Sprintf("m%d", i)
}

// successors enumerates every enabled transition of a configuration.
func successors(p protocol.Protocol, cur *node, idx int, cfg Config) []*node {
	var out []*node

	// 1. Submit the next message.
	if cur.submitted < cfg.Messages {
		s := cur.clone()
		msg := ioa.Message{ID: s.submitted, Payload: payload(cfg, s.submitted)}
		s.t.SendMsg(msg.Payload)
		s.submitted++
		s.parent = idx
		s.action = ioa.Event{Kind: ioa.SendMsg, Msg: msg}
		s.hasAction = true
		out = append(out, s)
	}

	// 2. Transmitter output (send_pkt^{t→r} into the channel).
	if cur.dataSends < cfg.MaxDataSends {
		s := cur.clone()
		if pk, ok := s.t.NextPkt(); ok {
			s.chData.send(pk)
			s.dataSends++
			s.parent = idx
			s.action = ioa.Event{Kind: ioa.SendPkt, Dir: ioa.TtoR, Pkt: pk}
			s.hasAction = true
			out = append(out, s)
		}
	}

	// 3. Receiver output (send_pkt^{r→t} into the channel).
	if cur.ackSends < cfg.MaxAckSends {
		s := cur.clone()
		if pk, ok := s.r.NextPkt(); ok {
			s.chAck.send(pk)
			s.ackSends++
			s.parent = idx
			s.action = ioa.Event{Kind: ioa.SendPkt, Dir: ioa.RtoT, Pkt: pk}
			s.hasAction = true
			out = append(out, s)
		}
	}

	// 4. Deliver a deliverable data packet to the receiver (any in-transit
	// packet for the non-FIFO discipline; the head for FIFO).
	for _, pk := range cur.chData.deliverable() {
		s := cur.clone()
		if err := s.chData.deliver(pk); err != nil {
			continue
		}
		s.r.DeliverPkt(pk)
		s.delivered = append(s.delivered, s.r.TakeDelivered()...)
		s.parent = idx
		s.action = ioa.Event{Kind: ioa.ReceivePkt, Dir: ioa.TtoR, Pkt: pk}
		s.hasAction = true
		out = append(out, s)
	}

	// 5. Deliver a deliverable ack packet to the transmitter.
	for _, pk := range cur.chAck.deliverable() {
		s := cur.clone()
		if err := s.chAck.deliver(pk); err != nil {
			continue
		}
		s.t.DeliverPkt(pk)
		s.parent = idx
		s.action = ioa.Event{Kind: ioa.ReceivePkt, Dir: ioa.RtoT, Pkt: pk}
		s.hasAction = true
		out = append(out, s)
	}

	// 6. Optionally, drop packets permanently.
	if cfg.AllowDrop {
		for _, pk := range cur.chData.droppable() {
			s := cur.clone()
			if err := s.chData.drop(pk); err != nil {
				continue
			}
			s.parent = idx
			// A drop is channel-internal: no external action. Record a
			// synthetic marker via a zero-kind event kept out of traces.
			s.hasAction = false
			out = append(out, s)
		}
		for _, pk := range cur.chAck.droppable() {
			s := cur.clone()
			if err := s.chAck.drop(pk); err != nil {
				continue
			}
			s.parent = idx
			s.hasAction = false
			out = append(out, s)
		}
	}

	return out
}

// violates checks the safety predicate: the delivered payload sequence must
// be a prefix of the submitted payload sequence. Over-delivery is the
// paper's invalid-execution shape rm = sm + 1 (DL1); a wrong payload at
// some position is a DL1 correspondence failure; out-of-order delivery of
// distinct payloads shows up as a payload mismatch too (DL2's shape folded
// into the prefix check).
func violates(s *node, cfg Config) *ioa.Violation {
	if len(s.delivered) > s.submitted {
		return &ioa.Violation{
			Property: "DL1",
			Index:    -1,
			Detail: fmt.Sprintf("%d messages delivered but only %d submitted (rm = sm + %d)",
				len(s.delivered), s.submitted, len(s.delivered)-s.submitted),
		}
	}
	for i, got := range s.delivered {
		if want := payload(cfg, i); got != want {
			return &ioa.Violation{
				Property: "DL1",
				Index:    -1,
				Detail: fmt.Sprintf("delivery %d carried payload %q, the %d-th submitted message was %q",
					i, got, i, want),
			}
		}
	}
	return nil
}

// rebuild reconstructs the execution trace from the node arena by walking
// the parent chain and inserting receive_msg events after the receive_pkt
// events that produced them (diffing delivered lengths along the chain).
// The violating node is not in the arena yet, so it is passed explicitly.
func rebuild(arena []*node, last *node) ioa.Trace {
	// Collect the chain root→last.
	var chain []*node
	for n := last; ; {
		chain = append(chain, n)
		if n.parent < 0 {
			break
		}
		n = arena[n.parent]
	}
	// Reverse.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	var tr ioa.Trace
	prevDelivered := 0
	for _, n := range chain {
		if n.hasAction {
			tr = append(tr, n.action)
		}
		for prevDelivered < len(n.delivered) {
			tr = append(tr, ioa.Event{
				Kind: ioa.ReceiveMsg,
				Msg:  ioa.Message{ID: prevDelivered, Payload: n.delivered[prevDelivered]},
			})
			prevDelivered++
		}
	}
	return tr
}

// key canonically encodes a configuration for deduplication.
func key(n *node) string {
	return fmt.Sprintf("%s\x1f%s\x1f%s\x1f%s\x1f%d\x1f%d\x1f%d\x1f%d",
		n.t.StateKey(), n.r.StateKey(), n.chData.key(), n.chAck.key(),
		n.submitted, len(n.delivered), n.dataSends, n.ackSends)
}
