package explore

import (
	"repro/internal/channel"
	"repro/internal/ioa"
)

// link abstracts the channel seen by the explorer, so the same search runs
// over both channel disciplines:
//
//   - msetLink (non-FIFO): any in-transit packet may be delivered next —
//     the paper's model, and the discipline under which bounded-header
//     protocols fall;
//   - fifoLink: only the oldest packet may be delivered (or lost) — the
//     classical lossy-FIFO channel over which the alternating bit protocol
//     is correct. Exploring both isolates *reordering* as the property the
//     paper's lower bounds hinge on.
type link interface {
	send(p ioa.Packet)
	// deliverable lists the packets that may be delivered next, in
	// deterministic order.
	deliverable() []ioa.Packet
	deliver(p ioa.Packet) error
	// droppable lists the packets that may be lost next.
	droppable() []ioa.Packet
	drop(p ioa.Packet) error
	countHeader(h string) int
	key() string
	clone() link
}

// msetLink is the non-FIFO discipline over a counted multiset.
type msetLink struct{ ch *channel.NonFIFO }

var _ link = (*msetLink)(nil)

func newMsetLink(dir ioa.Dir) *msetLink { return &msetLink{ch: channel.NewNonFIFO(dir)} }

func (l *msetLink) send(p ioa.Packet)          { l.ch.Send(p) }
func (l *msetLink) deliverable() []ioa.Packet  { return l.ch.Packets() }
func (l *msetLink) deliver(p ioa.Packet) error { return l.ch.Deliver(p) }
func (l *msetLink) droppable() []ioa.Packet    { return l.ch.Packets() }
func (l *msetLink) drop(p ioa.Packet) error    { return l.ch.Drop(p) }
func (l *msetLink) countHeader(h string) int   { return l.ch.CountHeader(h) }
func (l *msetLink) key() string                { return l.ch.Key() }
func (l *msetLink) clone() link                { return &msetLink{ch: l.ch.Clone()} }

// fifoLink is the order-preserving discipline: deliveries and losses touch
// the head of the queue only.
type fifoLink struct{ ch *channel.FIFO }

var _ link = (*fifoLink)(nil)

func newFifoLink(dir ioa.Dir) *fifoLink { return &fifoLink{ch: channel.NewFIFO(dir)} }

func (l *fifoLink) send(p ioa.Packet) { l.ch.Send(p) }

func (l *fifoLink) deliverable() []ioa.Packet {
	if h, ok := l.ch.Head(); ok {
		return []ioa.Packet{h}
	}
	return nil
}

func (l *fifoLink) deliver(p ioa.Packet) error {
	got, err := l.ch.DeliverHead()
	if err != nil {
		return err
	}
	if got != p {
		// Cannot happen when p came from deliverable(); guard anyway.
		return errHeadMismatch
	}
	return nil
}

func (l *fifoLink) droppable() []ioa.Packet { return l.deliverable() }

func (l *fifoLink) drop(ioa.Packet) error { return l.ch.DropHead() }

func (l *fifoLink) countHeader(h string) int { return l.ch.CountHeader(h) }
func (l *fifoLink) key() string              { return l.ch.Key() }
func (l *fifoLink) clone() link              { return &fifoLink{ch: l.ch.Clone()} }

// linkGenie adapts a link to the channel.Genie interface so counting
// protocols can run under the explorer on either discipline.
type linkGenie struct{ l link }

func (g linkGenie) Stale(h string) int { return g.l.countHeader(h) }
