package explore

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"repro/internal/channel"
	"repro/internal/ioa"
	"repro/internal/protocol"
)

func TestAltbitCounterexampleFound(t *testing.T) {
	rep, err := Explore(protocol.NewAltBit(), Config{Messages: 3, MaxDataSends: 5, MaxAckSends: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation == nil {
		t.Fatalf("exhaustive search must break altbit: %+v", rep)
	}
	if rep.Violation.Property != "DL1" {
		t.Fatalf("violation = %v", rep.Violation)
	}
	// The counterexample must independently fail the safety checkers.
	if err := ioa.CheckSafety(rep.Counterexample); err == nil {
		t.Fatalf("counterexample passes the checkers:\n%s", rep.Counterexample)
	}
	if len(rep.Counterexample) == 0 {
		t.Fatal("empty counterexample")
	}
}

func TestAltbitCounterexampleIsShort(t *testing.T) {
	// BFS returns a shortest counterexample; the known-minimal attack
	// needs 2 messages, a duplicate send of d0, and a replay — well under
	// 20 events.
	rep, err := Explore(protocol.NewAltBit(), Config{Messages: 2, MaxDataSends: 4, MaxAckSends: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation == nil {
		t.Fatal("no counterexample")
	}
	if len(rep.Counterexample) > 16 {
		t.Fatalf("counterexample unexpectedly long (%d events):\n%s",
			len(rep.Counterexample), rep.Counterexample)
	}
}

func TestAltbitCounterexampleShape(t *testing.T) {
	rep, err := Explore(protocol.NewAltBit(), Config{Messages: 2, MaxDataSends: 4, MaxAckSends: 4})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Counterexample.String()
	// The attack replays a stale d0 copy; the trace must show d0 received
	// at least twice.
	if strings.Count(s, "receive_pkt^t→r(d0") < 2 {
		t.Fatalf("expected a replayed d0 in the counterexample:\n%s", s)
	}
	c := rep.Counterexample.Count()
	if c.RM != c.SM+1 {
		t.Fatalf("counterexample should have rm = sm+1, got sm=%d rm=%d", c.SM, c.RM)
	}
}

func TestSeqnumSafeWithinBounds(t *testing.T) {
	rep, err := Explore(protocol.NewSeqNum(), Config{Messages: 2, MaxDataSends: 4, MaxAckSends: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation != nil {
		t.Fatalf("seqnum should be safe; counterexample:\n%s", rep.Counterexample)
	}
	if !rep.Exhausted {
		t.Fatalf("bounded space should be exhausted (states=%d)", rep.States)
	}
	if rep.States < 100 {
		t.Fatalf("suspiciously few states explored: %d", rep.States)
	}
}

func TestCntLinearSafeWithinBounds(t *testing.T) {
	rep, err := Explore(protocol.NewCntLinear(), Config{Messages: 2, MaxDataSends: 4, MaxAckSends: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation != nil {
		t.Fatalf("cntlinear should be safe; counterexample:\n%s", rep.Counterexample)
	}
	if !rep.Exhausted {
		t.Fatal("bounded space should be exhausted")
	}
}

func TestCheatCounterexampleFound(t *testing.T) {
	// cheat(1) accepts one copy early; the explorer needs enough sends to
	// strand a same-bit stale copy across two phases.
	rep, err := Explore(protocol.NewCheat(1), Config{Messages: 3, MaxDataSends: 6, MaxAckSends: 6})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation == nil {
		t.Fatalf("exhaustive search should break cheat(1): states=%d", rep.States)
	}
	if err := ioa.CheckSafety(rep.Counterexample); err == nil {
		t.Fatal("counterexample passes the checkers")
	}
}

func TestLivelockNoSafetyViolation(t *testing.T) {
	// The livelock protocol never delivers anything: safe (vacuously),
	// just not live. The explorer must exhaust without a violation.
	rep, err := Explore(protocol.NewLivelock(), Config{Messages: 2, MaxDataSends: 3, MaxAckSends: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation != nil || !rep.Exhausted {
		t.Fatalf("livelock is safe but not live: %+v", rep)
	}
}

func TestConstantPayloadConvention(t *testing.T) {
	// Under the all-messages-identical convention, only over-delivery can
	// violate; altbit still falls (rm = sm + 1).
	rep, err := Explore(protocol.NewAltBit(), Config{
		Messages: 2, MaxDataSends: 4, MaxAckSends: 4, ConstantPayload: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation == nil {
		t.Fatal("altbit should fall under the constant-payload convention too")
	}
	if !strings.Contains(rep.Violation.Detail, "rm = sm + 1") {
		t.Fatalf("expected an over-delivery violation, got %v", rep.Violation)
	}
}

func TestAllowDropExploresMoreStates(t *testing.T) {
	base, err := Explore(protocol.NewSeqNum(), Config{Messages: 1, MaxDataSends: 2, MaxAckSends: 2})
	if err != nil {
		t.Fatal(err)
	}
	drop, err := Explore(protocol.NewSeqNum(), Config{
		Messages: 1, MaxDataSends: 2, MaxAckSends: 2, AllowDrop: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if drop.States <= base.States {
		t.Fatalf("AllowDrop should widen the space: %d vs %d", drop.States, base.States)
	}
	if drop.Violation != nil {
		t.Fatal("loss alone must not break a correct protocol")
	}
}

func TestMaxStatesTruncates(t *testing.T) {
	rep, err := Explore(protocol.NewSeqNum(), Config{
		Messages: 3, MaxDataSends: 8, MaxAckSends: 8, MaxStates: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Exhausted {
		t.Fatal("tiny MaxStates should not exhaust the space")
	}
}

func TestDefaultsApplied(t *testing.T) {
	rep, err := Explore(protocol.NewAltBit(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Defaults: 2 messages, 6 sends each — enough to break altbit.
	if rep.Violation == nil {
		t.Fatalf("default bounds should break altbit: %+v", rep)
	}
}

func TestTransitionCountsReported(t *testing.T) {
	rep, err := Explore(protocol.NewSeqNum(), Config{Messages: 1, MaxDataSends: 2, MaxAckSends: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Transitions == 0 || rep.States == 0 {
		t.Fatalf("counters not reported: %+v", rep)
	}
	if rep.Transitions < rep.States-1 {
		t.Fatalf("transitions (%d) < states-1 (%d)", rep.Transitions, rep.States-1)
	}
}

// --- FIFO discipline: reordering is the decisive property ---

func TestAltbitSafeOverFIFO(t *testing.T) {
	// Over a lossy FIFO channel the alternating bit protocol is correct
	// [BSW69]; the same bounds that break it over non-FIFO exhaust safely
	// here. Reordering — not loss — is what the paper's lower bounds
	// exploit.
	rep, err := Explore(protocol.NewAltBit(), Config{
		Messages: 3, MaxDataSends: 5, MaxAckSends: 5, FIFO: true, AllowDrop: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation != nil {
		t.Fatalf("altbit must be safe over FIFO:\n%s", rep.Counterexample)
	}
	if !rep.Exhausted {
		t.Fatalf("FIFO space should be exhausted (states=%d)", rep.States)
	}
}

func TestAltbitFIFOvsNonFIFOContrast(t *testing.T) {
	cfgBase := Config{Messages: 2, MaxDataSends: 4, MaxAckSends: 4, AllowDrop: true}
	fifoCfg := cfgBase
	fifoCfg.FIFO = true
	fifo, err := Explore(protocol.NewAltBit(), fifoCfg)
	if err != nil {
		t.Fatal(err)
	}
	nonfifo, err := Explore(protocol.NewAltBit(), cfgBase)
	if err != nil {
		t.Fatal(err)
	}
	if fifo.Violation != nil {
		t.Fatal("FIFO: altbit should be safe")
	}
	if nonfifo.Violation == nil {
		t.Fatal("non-FIFO: altbit should be broken")
	}
}

func TestSeqnumSafeOverFIFOToo(t *testing.T) {
	rep, err := Explore(protocol.NewSeqNum(), Config{
		Messages: 2, MaxDataSends: 4, MaxAckSends: 4, FIFO: true, AllowDrop: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation != nil || !rep.Exhausted {
		t.Fatalf("seqnum over FIFO: %+v", rep)
	}
}

func TestFIFOSpaceSmallerThanNonFIFO(t *testing.T) {
	// The FIFO discipline has fewer delivery choices, so (at equal
	// bounds, for a protocol safe under both) it explores fewer states.
	cfg := Config{Messages: 2, MaxDataSends: 4, MaxAckSends: 4}
	nf, err := Explore(protocol.NewSeqNum(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.FIFO = true
	f, err := Explore(protocol.NewSeqNum(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f.States >= nf.States {
		t.Fatalf("FIFO states %d should be < non-FIFO states %d", f.States, nf.States)
	}
}

func TestCountingProtocolsRunUnderLinkGenie(t *testing.T) {
	// The explorer wires counting protocols to a link-backed genie; they
	// must stay safe under both disciplines.
	for _, fifo := range []bool{false, true} {
		rep, err := Explore(protocol.NewCntLinear(), Config{
			Messages: 2, MaxDataSends: 4, MaxAckSends: 4, FIFO: fifo,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Violation != nil {
			t.Fatalf("cntlinear broke under fifo=%t:\n%s", fifo, rep.Counterexample)
		}
	}
}

// --- deadlock (DL3) detection ---

func TestDeadlockDetectionBlindAck(t *testing.T) {
	// The distilled stale-ack liveness bug: a transmitter that treats ANY
	// acknowledgement as confirming the current message. A duplicate ack
	// from message 0 falsely confirms message 1 after its only data copy
	// is lost; the channels drain and delivery is permanently stuck. The
	// FIFO discipline keeps the (correct) altbit receiver safe, isolating
	// the liveness failure.
	rep, err := Explore(blindAck{}, Config{
		Messages: 2, MaxDataSends: 4, MaxAckSends: 4,
		FIFO: true, AllowDrop: true, CheckDeadlock: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation == nil || rep.Violation.Property != "DL3" {
		t.Fatalf("expected a DL3 deadlock, got %+v", rep)
	}
	if len(rep.Counterexample) == 0 {
		t.Fatal("deadlock counterexample missing")
	}
	if !strings.Contains(rep.Violation.Detail, "deadlock") {
		t.Fatalf("detail = %q", rep.Violation.Detail)
	}
}

func TestDeadlockNotFlaggedForCorrectProtocols(t *testing.T) {
	for _, p := range []protocol.Protocol{protocol.NewSeqNum(), protocol.NewAltBit()} {
		rep, err := Explore(p, Config{
			Messages: 2, MaxDataSends: 4, MaxAckSends: 4,
			FIFO: true, AllowDrop: true, CheckDeadlock: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Violation != nil && rep.Violation.Property == "DL3" {
			t.Fatalf("%s: spurious deadlock over FIFO:\n%s", p.Name(), rep.Counterexample)
		}
	}
}

func TestDeadlockNotFlaggedWhenMerelySendCapped(t *testing.T) {
	// The livelock transmitter is always Busy; hitting the send cap with
	// undelivered messages must NOT be reported as a deadlock.
	rep, err := Explore(protocol.NewLivelock(), Config{
		Messages: 1, MaxDataSends: 2, MaxAckSends: 2, CheckDeadlock: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation != nil {
		t.Fatalf("send-capped livelock flagged as deadlock: %+v", rep)
	}
}

// blindAck pairs the correct alternating-bit receiver with a transmitter
// whose only defect is confirming the current message on ANY ack header —
// the distilled form of sequence-space ack aliasing.
type blindAck struct{}

func (blindAck) Name() string             { return "blindack" }
func (blindAck) HeaderBound() (int, bool) { return 4, true }
func (blindAck) New(_, _ channel.Genie) (protocol.Transmitter, protocol.Receiver) {
	_, r := protocol.NewAltBit().New(nil, nil)
	return &blindAckT{}, r
}

type blindAckT struct {
	bit     int
	busy    bool
	payload string
	queue   []string
}

func (t *blindAckT) SendMsg(payload string) {
	if t.busy {
		t.queue = append(t.queue, payload)
		return
	}
	t.busy = true
	t.payload = payload
}

func (t *blindAckT) DeliverPkt(p ioa.Packet) {
	if !t.busy || len(p.Header) == 0 || p.Header[0] != 'a' {
		return
	}
	// The bug: no bit check.
	t.busy = false
	t.payload = ""
	t.bit ^= 1
	if len(t.queue) > 0 {
		t.busy = true
		t.payload = t.queue[0]
		t.queue = t.queue[1:]
	}
}

func (t *blindAckT) NextPkt() (ioa.Packet, bool) {
	if !t.busy {
		return ioa.Packet{}, false
	}
	return ioa.Packet{Header: "d" + fmt.Sprint(t.bit), Payload: t.payload}, true
}

func (t *blindAckT) Busy() bool { return t.busy || len(t.queue) > 0 }

func (t *blindAckT) Clone() protocol.Transmitter {
	c := *t
	c.queue = append([]string(nil), t.queue...)
	return &c
}

func (t *blindAckT) StateKey() string {
	var b strings.Builder
	b.WriteString("blindAckT{bit=")
	b.WriteString(strconv.Itoa(t.bit))
	b.WriteString(" busy=")
	b.WriteString(strconv.FormatBool(t.busy))
	b.WriteString(" payload=")
	b.WriteString(strconv.Quote(t.payload))
	b.WriteString(" q=[")
	b.WriteString(strings.Join(t.queue, " "))
	b.WriteString("]}")
	return b.String()
}

func (t *blindAckT) StateSize() int { return 2 + len(t.payload) }

func TestCntKSafeWithinBounds(t *testing.T) {
	rep, err := Explore(protocol.NewCntK(3), Config{Messages: 2, MaxDataSends: 4, MaxAckSends: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation != nil {
		t.Fatalf("cntk3 should be safe:\n%s", rep.Counterexample)
	}
	if !rep.Exhausted {
		t.Fatal("space should be exhausted")
	}
}

func TestExploreDeterministic(t *testing.T) {
	cfg := Config{Messages: 2, MaxDataSends: 4, MaxAckSends: 4}
	a, err := Explore(protocol.NewAltBit(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Explore(protocol.NewAltBit(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.States != b.States || a.Transitions != b.Transitions ||
		len(a.Counterexample) != len(b.Counterexample) {
		t.Fatalf("explorer nondeterministic: %+v vs %+v", a, b)
	}
	for i := range a.Counterexample {
		if a.Counterexample[i] != b.Counterexample[i] {
			t.Fatal("counterexamples differ between runs")
		}
	}
}
