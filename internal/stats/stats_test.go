package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarizeBasic(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 4 || !almost(s.Mean, 2.5, 1e-12) || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary = %+v", s)
	}
	if !almost(s.Median, 2.5, 1e-12) {
		t.Fatalf("median = %g", s.Median)
	}
	// Sample stddev of {1,2,3,4} is sqrt(5/3).
	if !almost(s.StdDev, math.Sqrt(5.0/3.0), 1e-12) {
		t.Fatalf("stddev = %g", s.StdDev)
	}
}

func TestSummarizeOddMedian(t *testing.T) {
	s, err := Summarize([]float64{9, 1, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.Median != 5 {
		t.Fatalf("median = %g, want 5", s.Median)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrTooFew {
		t.Fatalf("expected ErrTooFew, got %v", err)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if s.StdDev != 0 || s.Mean != 7 || s.Median != 7 {
		t.Fatalf("summary = %+v", s)
	}
	if !math.IsInf(s.CI95(), 1) {
		t.Fatal("CI95 of a single point should be infinite")
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Summarize(xs); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestSummaryString(t *testing.T) {
	s, _ := Summarize([]float64{1, 2})
	if got := s.String(); got == "" {
		t.Fatal("empty summary string")
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 2x + 1
	f, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(f.Slope, 2, 1e-12) || !almost(f.Intercept, 1, 1e-12) || !almost(f.R2, 1, 1e-12) {
		t.Fatalf("fit = %+v", f)
	}
}

func TestLinearFitConstantY(t *testing.T) {
	f, err := LinearFit([]float64{0, 1, 2}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(f.Slope, 0, 1e-12) || !almost(f.R2, 1, 1e-12) {
		t.Fatalf("fit = %+v", f)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single point should fail")
	}
	if _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("mismatched lengths should fail")
	}
	if _, err := LinearFit([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Fatal("degenerate x should fail")
	}
}

func TestGrowthRateExactGeometric(t *testing.T) {
	// y = 3 · 1.5^x
	x := []float64{0, 1, 2, 3, 4}
	y := make([]float64, len(x))
	for i := range x {
		y[i] = 3 * math.Pow(1.5, x[i])
	}
	rate, fit, err := GrowthRate(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(rate, 1.5, 1e-9) || fit.R2 < 0.999 {
		t.Fatalf("rate = %g, fit = %+v", rate, fit)
	}
}

func TestGrowthRateLinearSeriesNearOne(t *testing.T) {
	// A linear series has sub-exponential growth: fitted rate → 1 as the
	// range grows; on 1..20 it should be well below 1.5.
	var x, y []float64
	for i := 1; i <= 20; i++ {
		x = append(x, float64(i))
		y = append(y, float64(5*i))
	}
	rate, _, err := GrowthRate(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if rate > 1.3 {
		t.Fatalf("linear series fitted rate %g, want close to 1", rate)
	}
}

func TestGrowthRateRejectsNonPositive(t *testing.T) {
	if _, _, err := GrowthRate([]float64{0, 1}, []float64{1, 0}); err == nil {
		t.Fatal("non-positive y should fail")
	}
}

func TestHoeffdingMatchesFormula(t *testing.T) {
	// e^{-2·100·(0.1-0.3)²} = e^{-8}
	got := Hoeffding(100, 0.1, 0.3)
	want := math.Exp(-8)
	if !almost(got, want, 1e-15) {
		t.Fatalf("Hoeffding = %g, want %g", got, want)
	}
	if Hoeffding(0, 0.1, 0.3) != 1 {
		t.Fatal("n=0 should give the trivial bound 1")
	}
}

func TestHoeffdingDecaysInN(t *testing.T) {
	prev := 1.0
	for _, n := range []int{10, 20, 40, 80} {
		b := Hoeffding(n, 0.1, 0.25)
		if b >= prev {
			t.Fatalf("bound not decreasing at n=%d: %g ≥ %g", n, b, prev)
		}
		prev = b
	}
}

func TestTailFraction(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := TailFraction(xs, 3); got != 0.5 {
		t.Fatalf("TailFraction = %g, want 0.5", got)
	}
	if got := TailFraction(xs, 0); got != 0 {
		t.Fatalf("TailFraction below min = %g", got)
	}
	if got := TailFraction(xs, 100); got != 1 {
		t.Fatalf("TailFraction above max = %g", got)
	}
	if got := TailFraction(nil, 1); got != 0 {
		t.Fatalf("TailFraction of empty = %g", got)
	}
}

// Property: mean is within [min, max] and shifting the sample shifts the
// mean accordingly.
func TestQuickSummarizeShift(t *testing.T) {
	f := func(raw []int8, shift int8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
			ys[i] = float64(v) + float64(shift)
		}
		a, err1 := Summarize(xs)
		b, err2 := Summarize(ys)
		if err1 != nil || err2 != nil {
			return false
		}
		if a.Mean < a.Min-1e-9 || a.Mean > a.Max+1e-9 {
			return false
		}
		return almost(b.Mean, a.Mean+float64(shift), 1e-9) &&
			almost(b.StdDev, a.StdDev, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: LinearFit recovers slope/intercept exactly on noiseless lines.
func TestQuickLinearFitRecovers(t *testing.T) {
	f := func(m, b int8) bool {
		x := []float64{0, 1, 2, 3, 4, 5}
		y := make([]float64, len(x))
		for i := range x {
			y[i] = float64(m)*x[i] + float64(b)
		}
		fit, err := LinearFit(x, y)
		if err != nil {
			return false
		}
		return almost(fit.Slope, float64(m), 1e-9) && almost(fit.Intercept, float64(b), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
