// Package stats provides the statistical utilities used by the Theorem 5.1
// experiments: summary statistics over Monte-Carlo runs, a log-linear
// growth-rate fit for detecting exponential packet blow-up, empirical tail
// probabilities, and the Hoeffding tail bound the paper cites as
// Theorem 5.4 ([Hoe63]).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrTooFew is returned when an estimator needs more data points.
var ErrTooFew = errors.New("stats: too few data points")

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes descriptive statistics. It returns ErrTooFew on an
// empty sample.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrTooFew
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.StdDev = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s, nil
}

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval for the mean.
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return math.Inf(1)
	}
	return 1.96 * s.StdDev / math.Sqrt(float64(s.N))
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g ±%.2g sd=%.4g min=%.4g med=%.4g max=%.4g",
		s.N, s.Mean, s.CI95(), s.StdDev, s.Min, s.Median, s.Max)
}

// Fit is the result of a least-squares regression.
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// LinearFit performs ordinary least squares of y on x. It returns ErrTooFew
// with fewer than two points or with degenerate x.
func LinearFit(x, y []float64) (Fit, error) {
	if len(x) != len(y) {
		return Fit{}, fmt.Errorf("stats: mismatched lengths %d and %d", len(x), len(y))
	}
	if len(x) < 2 {
		return Fit{}, ErrTooFew
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{}, fmt.Errorf("stats: degenerate x values: %w", ErrTooFew)
	}
	f := Fit{Slope: sxy / sxx}
	f.Intercept = my - f.Slope*mx
	if syy > 0 {
		f.R2 = (sxy * sxy) / (sxx * syy)
	} else {
		f.R2 = 1 // constant y fitted exactly
	}
	return f, nil
}

// GrowthRate fits y ≈ c·r^x by regressing log(y) on x and returns the
// per-unit growth ratio r together with the fit quality. All y must be
// positive.
func GrowthRate(x, y []float64) (rate float64, fit Fit, err error) {
	ly := make([]float64, len(y))
	for i, v := range y {
		if v <= 0 {
			return 0, Fit{}, fmt.Errorf("stats: GrowthRate needs positive y, got %g at %d", v, i)
		}
		ly[i] = math.Log(v)
	}
	fit, err = LinearFit(x, ly)
	if err != nil {
		return 0, Fit{}, err
	}
	return math.Exp(fit.Slope), fit, nil
}

// Hoeffding is the tail bound of the paper's Theorem 5.4 ([Hoe63]): for
// independent 0/1 variables X_i with success probability q and any
// alpha < q,
//
//	Prob[ Σ X_i ≤ alpha·n ] ≤ exp(−2n(alpha−q)²).
func Hoeffding(n int, alpha, q float64) float64 {
	if n <= 0 {
		return 1
	}
	d := alpha - q
	return math.Exp(-2 * float64(n) * d * d)
}

// TailFraction reports the fraction of samples strictly below the
// threshold: an empirical estimate of Prob[X < t].
func TailFraction(xs []float64, t float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := 0
	for _, x := range xs {
		if x < t {
			c++
		}
	}
	return float64(c) / float64(len(xs))
}
