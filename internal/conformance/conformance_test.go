package conformance

import (
	"strconv"
	"testing"

	"repro/internal/channel"
	"repro/internal/ioa"
	"repro/internal/protocol"
	"repro/internal/replay"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/transport"
)

// record captures one schedule against p as an NFT event log.
func record(t *testing.T, p protocol.Protocol, data, ack channel.Policy, drive func(r *sim.Runner)) *trace.Log {
	t.Helper()
	l := trace.NewLog(nil)
	r := sim.NewRunner(sim.Config{
		Protocol:    p,
		DataPolicy:  data,
		AckPolicy:   ack,
		RecordTrace: true,
		TraceLog:    l,
	})
	drive(r)
	return l
}

// driveMessages submits n messages, stepping each to confirmation with a
// step cap so a recording bug cannot hang the suite.
func driveMessages(t *testing.T, r *sim.Runner, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		r.SubmitMsg("m" + strconv.Itoa(i))
		for steps := 0; r.T.Busy(); steps++ {
			if steps > 400 {
				t.Fatalf("message %d did not confirm within 400 steps", i)
			}
			r.StepTransmit()
			r.DrainAcks()
		}
	}
}

// mustEquivalent fails the test with the full mismatch report if the two
// implementations diverged on the schedule.
func mustEquivalent(t *testing.T, l *trace.Log, native, adapted protocol.Protocol) *Report {
	t.Helper()
	rep, err := Compare(l, native, adapted)
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if !rep.Equivalent() {
		t.Fatalf("adapted form not event-equivalent:\n%s", rep)
	}
	if rep.Ops == 0 {
		t.Fatal("schedule recorded no operations; the comparison is vacuous")
	}
	return rep
}

// Schedule 1 (both protocols): reliable wrap — three full trips around the
// S=4 sequence space, exercising every header value on both channels.
func recordReliableWrap(t *testing.T, p protocol.Protocol) *trace.Log {
	return record(t, p, channel.Reliable(), channel.Reliable(), func(r *sim.Runner) {
		driveMessages(t, r, 12)
	})
}

// Schedule 2 (both protocols): deterministic loss — periodic drops on both
// channels force retransmissions, reordering-buffer traffic (swindow) and
// cumulative re-acks (gbn).
func recordLossy(t *testing.T, p protocol.Protocol) *trace.Log {
	return record(t, p, channel.DropEvery(3), channel.DropEvery(4), func(r *sim.Runner) {
		driveMessages(t, r, 6)
	})
}

// Schedule 3 (swindow): the wrap-alias DL1 attack. A delayed copy of the
// very first data packet (header s0, payload m0) is replayed after the
// window has wrapped to sequence 4, whose header is also s0 — the receiver
// accepts the stale payload as message 4.
func recordSwindowWrapAlias(t *testing.T) *trace.Log {
	p := transport.New(4, 2)
	return record(t, p, channel.Script(channel.Delay), channel.Reliable(), func(r *sim.Runner) {
		r.SubmitMsg("m0")
		r.StepTransmit() // first s0[m0] copy delayed: the future alias
		r.StepTransmit() // retransmission delivered; m0 confirmed below
		r.DrainAcks()
		for i := 1; i < 4; i++ {
			r.SubmitMsg("m" + strconv.Itoa(i))
			r.StepTransmit()
			r.DrainAcks()
		}
		r.SubmitMsg("m4") // sequence 4 wraps to header s0
		if err := r.DeliverStale(ioa.TtoR, ioa.Packet{Header: "s0", Payload: "m0"}); err != nil {
			t.Fatalf("stale s0 replay infeasible: %v", err)
		}
	})
}

// Schedule 3 (gbn): the ack-alias livelock. A delayed t0 ack from message 0
// is replayed after the window wraps, acknowledging the queued-but-untransmitted
// sequence 4; the sender strands m4 and the pair loops forever (sender
// retransmits s1, receiver re-acks t3 which resolves to nothing).
func recordGbnAckAlias(t *testing.T) *trace.Log {
	p := transport.NewGoBackN(4, 2)
	return record(t, p, channel.Reliable(), channel.Script(channel.Delay), func(r *sim.Runner) {
		r.SubmitMsg("m0")
		r.StepTransmit() // s0 delivered, t0 queued
		r.DrainAcks()    // t0 delayed: the future alias
		r.StepTransmit() // s0 retransmitted; receiver re-acks t0
		r.DrainAcks()    // re-ack delivered, m0 confirmed
		for i := 1; i < 4; i++ {
			r.SubmitMsg("m" + strconv.Itoa(i))
			r.StepTransmit()
			r.DrainAcks()
		}
		r.SubmitMsg("m4") // sequence 4 admitted but never transmitted
		if err := r.DeliverStale(ioa.RtoT, ioa.Packet{Header: "t0"}); err != nil {
			t.Fatalf("stale t0 replay infeasible: %v", err)
		}
		r.SubmitMsg("m5") // sequence 5; receiver still expects sequence 4
		for i := 0; i < 4; i++ {
			r.StepTransmit() // s1 rejected
			r.DrainAcks()    // t3 re-ack resolves no in-flight sequence
		}
	})
}

func TestSwindowConformance(t *testing.T) {
	native := transport.New(4, 2)
	adapted := transport.MustAdapt(transport.New(4, 2))

	mustEquivalent(t, recordReliableWrap(t, native), native, adapted)
	mustEquivalent(t, recordLossy(t, native), native, adapted)

	rep := mustEquivalent(t, recordSwindowWrapAlias(t), native, adapted)
	if rep.A.Verdict == nil || rep.A.Verdict.Property != "DL1" {
		t.Fatalf("wrap-alias schedule should violate DL1 on both sides, got verdict %v", rep.A.Verdict)
	}
}

func TestGbnConformance(t *testing.T) {
	native := transport.NewGoBackN(4, 2)
	adapted := transport.MustAdapt(transport.NewGoBackN(4, 2))

	mustEquivalent(t, recordReliableWrap(t, native), native, adapted)
	mustEquivalent(t, recordLossy(t, native), native, adapted)

	attack := recordGbnAckAlias(t)
	rep := mustEquivalent(t, attack, native, adapted)
	if rep.A.Verdict != nil {
		t.Fatalf("ack-alias schedule should be safety-clean, got %v", rep.A.Verdict)
	}
	if rep.A.DL3 == nil {
		t.Fatal("ack-alias schedule should strand messages (DL3) on both sides")
	}

	// The DL3 certificate replay: certify the livelock via the pumping
	// lemma, then prove the adapter preserves the pumped certificate's
	// behaviour event for event.
	cert, err := replay.CertifyLivelock(attack, replay.CertifyOptions{})
	if err != nil {
		t.Fatalf("CertifyLivelock: %v", err)
	}
	if cert.CycleOps == 0 {
		t.Fatal("certificate has an empty cycle")
	}
	pumped := cert.Pumped(3)
	prep := mustEquivalent(t, pumped, native, adapted)
	if prep.A.DL3 == nil || prep.B.DL3 == nil {
		t.Fatal("pumped certificate lost its DL3 verdict under differential replay")
	}
	if prep.A.Divergence != nil || prep.B.Divergence != nil {
		t.Fatalf("pumped certificate should replay with zero divergence on both sides: native %v, adapted %v",
			prep.A.Divergence, prep.B.Divergence)
	}
}

// TestUnboundedVariantConformance covers the S=0 (unbounded sequence space)
// forms, where the adapter's ControlKey falls back to the native StateKey.
func TestUnboundedVariantConformance(t *testing.T) {
	for _, mk := range []protocol.Protocol{transport.New(0, 2), transport.NewGoBackN(0, 2)} {
		adapted := transport.MustAdapt(mk)
		mustEquivalent(t, recordReliableWrap(t, mk), mk, adapted)
		mustEquivalent(t, recordLossy(t, mk), mk, adapted)
	}
}

// TestDetectsNonEquivalence is the harness's negative control: two genuinely
// different protocols must not pass. altbit and seqnum agree on the first
// two headers (0, 1) but diverge on the third message, where altbit wraps
// back to 0 and seqnum counts on to 2.
func TestDetectsNonEquivalence(t *testing.T) {
	ab := protocol.NewAltBit()
	l := record(t, ab, channel.Reliable(), channel.Reliable(), func(r *sim.Runner) {
		driveMessages(t, r, 3)
	})
	rep, err := Compare(l, ab, protocol.SeqNum{})
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if rep.Equivalent() {
		t.Fatal("altbit and seqnum reported as equivalent; the harness is not comparing events")
	}
	found := false
	for _, m := range rep.Mismatches {
		if m.Field == "events" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected an event-stream mismatch, got:\n%s", rep)
	}
	if rep.String() == "" {
		t.Fatal("mismatch report did not render")
	}
}
