// Package conformance implements the differential conformance harness: it
// replays one recorded schedule through two protocol implementations that
// claim to be the same protocol and reports every observable difference.
//
// The primary client is the transport adapter (internal/transport): an
// Adapted protocol is only trustworthy as an audit subject if it is
// behaviour-preserving, and behaviour preservation is exactly what Compare
// checks — event-for-event equality of the replayed executions (sends,
// deliveries, stale moves), equal delivered-payload sequences, and matching
// DL1/DL2/PL1 and DL3 oracle verdicts. Because the comparison is replay
// based it extends to any recorded schedule, including pumped livelock
// certificates from replay.CertifyLivelock.
package conformance

import (
	"fmt"
	"strings"

	"repro/internal/ioa"
	"repro/internal/protocol"
	"repro/internal/replay"
	"repro/internal/trace"
)

// Mismatch is one observable difference between the two replays.
type Mismatch struct {
	// Field names the compared observable ("events", "delivered", "verdict",
	// "dl3", "ops", "stale-skipped", "decisions").
	Field string
	// A and B render the two sides' values.
	A, B string
}

func (m Mismatch) String() string {
	return fmt.Sprintf("%s: A %s, B %s", m.Field, m.A, m.B)
}

// Report is the outcome of a differential replay.
type Report struct {
	// Protocol is the trace's protocol name.
	Protocol string
	// Ops counts the driver operations re-issued on each side.
	Ops int
	// A and B are the two replay results, for callers that want to inspect
	// beyond the mismatch summary.
	A, B *replay.Result
	// Mismatches lists every observable on which the two replays differ,
	// empty when the implementations are event-equivalent on this schedule.
	Mismatches []Mismatch
}

// Equivalent reports whether the two implementations were observationally
// identical on the replayed schedule.
func (r *Report) Equivalent() bool { return len(r.Mismatches) == 0 }

func (r *Report) String() string {
	if r.Equivalent() {
		return fmt.Sprintf("conformance %s: equivalent over %d ops", r.Protocol, r.Ops)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "conformance %s: %d mismatches over %d ops", r.Protocol, len(r.Mismatches), r.Ops)
	for _, m := range r.Mismatches {
		b.WriteString("\n  ")
		b.WriteString(m.String())
	}
	return b.String()
}

// violationString renders an oracle verdict for comparison and display.
// Only the violated property and its position are compared — Detail strings
// may legitimately render implementation-private state.
func violationString(v *ioa.Violation) string {
	if v == nil {
		return "clean"
	}
	return fmt.Sprintf("%s@%d", v.Property, v.Index)
}

// Compare replays l through implementations a and b and reports every
// observable difference. The schedule's channel decisions are fixed by the
// recording, so any divergence is attributable to the implementations.
func Compare(l *trace.Log, a, b protocol.Protocol) (*Report, error) {
	ra, err := replay.RunAs(l, a)
	if err != nil {
		return nil, fmt.Errorf("conformance: replaying %s through %s: %w", l.Meta[trace.MetaProtocol], a.Name(), err)
	}
	rb, err := replay.RunAs(l, b)
	if err != nil {
		return nil, fmt.Errorf("conformance: replaying %s through %s: %w", l.Meta[trace.MetaProtocol], b.Name(), err)
	}

	rep := &Report{Protocol: l.Meta[trace.MetaProtocol], Ops: ra.Ops, A: ra, B: rb}
	add := func(field, av, bv string) {
		if av != bv {
			rep.Mismatches = append(rep.Mismatches, Mismatch{Field: field, A: av, B: bv})
		}
	}

	// Event-for-event: compare the two re-recorded logs' replayable
	// projections (submits, transmissions, deliveries, drains, stale moves
	// and the channel decisions they consumed).
	if d := replay.Diverge(ra.Log, rb.Log); d != nil {
		rep.Mismatches = append(rep.Mismatches, Mismatch{
			Field: "events",
			A:     fmt.Sprintf("event %d: %s", d.Index, d.Recorded),
			B:     d.Replayed,
		})
	}
	add("delivered", fmt.Sprintf("%q", ra.Delivered), fmt.Sprintf("%q", rb.Delivered))
	add("verdict", violationString(ra.Verdict), violationString(rb.Verdict))
	add("dl3", violationString(ra.DL3), violationString(rb.DL3))
	add("ops", fmt.Sprintf("%d", ra.Ops), fmt.Sprintf("%d", rb.Ops))
	add("stale-skipped", fmt.Sprintf("%d", ra.StaleSkipped), fmt.Sprintf("%d", rb.StaleSkipped))
	add("decisions", fmt.Sprintf("exhausted=%v", ra.DecisionsExhausted), fmt.Sprintf("exhausted=%v", rb.DecisionsExhausted))
	return rep, nil
}
