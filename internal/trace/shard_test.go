package trace

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/ioa"
)

// soakLog builds a small synthetic session log whose shape is a pure
// function of id, so shard tests can compare against an independent encode.
func soakLog(id int) *Log {
	rng := rand.New(rand.NewSource(int64(id) + 1))
	l := NewLog(map[string]string{MetaProtocol: "seqnum", MetaKind: "soak", MetaSource: "netlink"})
	n := 2 + rng.Intn(6)
	for i := 0; i < n; i++ {
		m := ioa.Message{ID: i, Payload: "m" + strings.Repeat("x", rng.Intn(4))}
		p := ioa.Packet{Header: "h", Payload: m.Payload}
		l.Emit(Event{Kind: KindSubmit, Msg: m})
		l.Emit(Event{Kind: KindTransmit})
		l.Emit(Event{Kind: KindSendPkt, Dir: ioa.TtoR, Pkt: p})
		if rng.Float64() < 0.3 {
			l.Emit(Event{Kind: KindDecision, Dir: ioa.TtoR, Decision: Drop})
			continue
		}
		l.Emit(Event{Kind: KindDecision, Dir: ioa.TtoR, Decision: DeliverNow})
		l.Emit(Event{Kind: KindRecvPkt, Dir: ioa.TtoR, Pkt: p})
		l.Emit(Event{Kind: KindRecvMsg, Msg: m})
	}
	if id%5 == 0 {
		l.Emit(Event{Kind: KindVerdict, Property: "DL1", Index: 4, Detail: "stale delivery accepted"})
	}
	return l
}

// TestShardStoreInterleavedWritesByteIdentical is the sharded-writer
// property: many sessions written concurrently, in arbitrary interleavings,
// extract from their shards byte-identical to a standalone single-session
// recording of the same log.
func TestShardStoreInterleavedWritesByteIdentical(t *testing.T) {
	dir := t.TempDir()
	s, err := NewShardStore(dir, 3)
	if err != nil {
		t.Fatalf("NewShardStore: %v", err)
	}
	const sessions = 40
	logs := make(map[string]*Log, sessions)
	names := make([]string, 0, sessions)
	for i := 0; i < sessions; i++ {
		name := fmt.Sprintf("s%03d", i)
		logs[name] = soakLog(i)
		names = append(names, name)
	}
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for _, name := range names {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			if _, err := s.Put(name, logs[name]); err != nil {
				errs <- err
			}
		}(name)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("Put: %v", err)
	}
	if s.Len() != sessions {
		t.Fatalf("store holds %d sessions, want %d", s.Len(), sessions)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	m, err := ReadManifestFile(dir)
	if err != nil {
		t.Fatalf("ReadManifestFile: %v", err)
	}
	if len(m.Entries) != sessions {
		t.Fatalf("manifest has %d entries, want %d", len(m.Entries), sessions)
	}
	for _, name := range names {
		got, err := ReadShardLog(dir, m, name)
		if err != nil {
			t.Fatalf("ReadShardLog(%s): %v", name, err)
		}
		var want, have bytes.Buffer
		if err := logs[name].Encode(&want); err != nil {
			t.Fatal(err)
		}
		if err := got.Encode(&have); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), have.Bytes()) {
			t.Fatalf("session %s: shard extraction differs from standalone encode", name)
		}
		e, ok := m.Lookup(name)
		if !ok {
			t.Fatalf("session %s missing from manifest", name)
		}
		st := Collect(logs[name])
		if e.Events != st.Events || e.Verdict != st.Verdict || e.Deliveries != st.Deliveries {
			t.Fatalf("session %s manifest entry %+v disagrees with log stats %+v", name, e, st)
		}
	}
}

// TestShardManifestOrderIndependent pins that a manifest depends only on the
// set of recorded sessions up to byte offsets: entries come out sorted by
// session name with identical shard assignment and stats regardless of the
// write interleaving (only offsets reflect how each shard was packed).
func TestShardManifestOrderIndependent(t *testing.T) {
	build := func(order []int) *Manifest {
		t.Helper()
		dir := t.TempDir()
		s, err := NewShardStore(dir, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range order {
			if _, err := s.Put(fmt.Sprintf("s%d", i), soakLog(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		m, err := ReadManifestFile(dir)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a := build([]int{0, 1, 2, 3, 4, 5})
	b := build([]int{5, 3, 1, 4, 2, 0})
	if !reflect.DeepEqual(a.Shards, b.Shards) {
		t.Fatalf("shard lists differ: %v vs %v", a.Shards, b.Shards)
	}
	if len(a.Entries) != len(b.Entries) {
		t.Fatalf("entry counts differ: %d vs %d", len(a.Entries), len(b.Entries))
	}
	for i := range a.Entries {
		ea, eb := a.Entries[i], b.Entries[i]
		ea.Offset, eb.Offset = 0, 0
		if !reflect.DeepEqual(ea, eb) {
			t.Fatalf("entry %d differs beyond offset:\n%+v\n%+v", i, ea, eb)
		}
		if i > 0 && a.Entries[i-1].Session >= a.Entries[i].Session {
			t.Fatalf("entries not sorted: %q before %q", a.Entries[i-1].Session, a.Entries[i].Session)
		}
	}
}

// TestShardManifestRoundTrip pins the NFMAN codec: encode → decode is the
// identity, and violating sessions are findable without opening shards.
func TestShardManifestRoundTrip(t *testing.T) {
	m := &Manifest{
		Shards: []string{"shard-000.nfts", "shard-001.nfts"},
		Entries: []ManifestEntry{
			{Session: "s000", Shard: 1, Offset: 0, Length: 321, Protocol: "altbit",
				Verdict: "violation DL1: stale delivery accepted", Events: 50, Ops: 20, Messages: 12, Deliveries: 11},
			{Session: "s001", Shard: 0, Offset: 98, Length: 200, Protocol: "seqnum",
				Events: 31, Ops: 14, Messages: 8, Deliveries: 8},
		},
	}
	var buf bytes.Buffer
	if err := EncodeManifest(&buf, m); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeManifest(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip changed manifest:\nwant %+v\ngot  %+v", m, got)
	}
	v := got.Violations()
	if len(v) != 1 || v[0].Session != "s000" {
		t.Fatalf("Violations() = %+v, want the s000 entry", v)
	}
}

// TestShardManifestDecodeRejects pins the malformed-manifest errors.
func TestShardManifestDecodeRejects(t *testing.T) {
	var good bytes.Buffer
	if err := EncodeManifest(&good, &Manifest{Shards: []string{"a"}}); err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"bad magic":      append([]byte("NOTNF"), good.Bytes()[5:]...),
		"bad version":    append(append([]byte{}, good.Bytes()[:5]...), append([]byte{0x7f}, good.Bytes()[6:]...)...),
		"trailing bytes": append(append([]byte{}, good.Bytes()...), 0xff),
		"truncated":      good.Bytes()[:4],
	}
	for name, b := range cases {
		if _, err := DecodeManifest(bytes.NewReader(b)); err == nil {
			t.Errorf("%s: decode accepted malformed manifest", name)
		}
	}
}

// TestShardStoreDuplicatePutRefused pins the zero-lost-recordings contract:
// a duplicate session key is an error, not a silent overwrite, and a closed
// store refuses writes.
func TestShardStoreDuplicatePutRefused(t *testing.T) {
	s, err := NewShardStore(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("dup", soakLog(1)); err != nil {
		t.Fatalf("first Put: %v", err)
	}
	if _, err := s.Put("dup", soakLog(2)); err == nil {
		t.Fatal("duplicate Put accepted")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := s.Put("late", soakLog(3)); err == nil {
		t.Fatal("Put after Close accepted")
	}
}
