package trace

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"repro/internal/ioa"
)

// FuzzTraceCodecRoundTrip feeds arbitrary bytes to the NFT decoder. Decoding
// must never panic; when it succeeds, the decoded log must survive an
// encode→decode round trip unchanged — the codec is the persistence layer
// for violation certificates, so any log it accepts must be one it can
// faithfully reproduce.
func FuzzTraceCodecRoundTrip(f *testing.F) {
	seed := func(l *Log) {
		var buf bytes.Buffer
		if err := l.Encode(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	seed(NewLog(nil))
	seed(&Log{
		Meta: map[string]string{MetaProtocol: "altbit", MetaKind: "sim"},
		Events: []Event{
			{Kind: KindSubmit, Msg: ioa.Message{ID: 0, Payload: "m0"}},
			{Kind: KindTransmit},
			{Kind: KindDecision, Dir: ioa.TtoR, Decision: Delay},
			{Kind: KindSendPkt, Dir: ioa.TtoR, Pkt: ioa.Packet{Header: "d0", Payload: "m0"}},
			{Kind: KindDrain},
			{Kind: KindStale, Dir: ioa.TtoR, Pkt: ioa.Packet{Header: "d0", Payload: "m0"}},
			{Kind: KindRNG, Bits: 0xdeadbeef},
			{Kind: KindVerdict, Property: "DL1", Index: 3, Detail: "dup"},
		},
	})
	f.Add([]byte{})
	f.Add([]byte("NFTRC\x01garbage"))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, b []byte) {
		l, err := ReadLog(bytes.NewReader(b))
		if err != nil {
			if !errors.Is(err, ErrFormat) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("decode error is not ErrFormat: %v", err)
			}
			return
		}
		var buf bytes.Buffer
		if err := l.Encode(&buf); err != nil {
			t.Fatalf("re-encoding accepted log: %v", err)
		}
		l2, err := ReadLog(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding own encoding: %v", err)
		}
		if !reflect.DeepEqual(l.Meta, l2.Meta) {
			t.Fatalf("meta round trip mismatch: %v vs %v", l.Meta, l2.Meta)
		}
		if !reflect.DeepEqual(l.Events, l2.Events) {
			t.Fatalf("events round trip mismatch:\n%v\nvs\n%v", l.Events, l2.Events)
		}
	})
}
