// Package trace defines the repo's persistent execution-trace format: a
// compact, versioned, self-describing event log that captures everything
// needed to re-run a simulation bit-for-bit.
//
// A recorded execution has two interleaved strands:
//
//   - *operations* — the driver-level moves that advance the system
//     (Submit, Transmit, Drain, Stale). Replaying a trace means re-issuing
//     exactly these calls against a fresh runner.
//   - *observations* — the externally visible actions they caused
//     (SendPkt, RecvPkt, RecvMsg) plus the channel-policy Decision for
//     every send and any raw RNG draws. Observations are not re-issued on
//     replay; they are compared against the replayed run, event for event,
//     to certify that the replay is faithful.
//
// Because every source of nondeterminism in the model is a channel-policy
// decision (the paper externalises all channel choice into behaviours), a
// log's Decision stream is a complete witness of the channel behaviour:
// substituting it for the live policy makes any recorded run — including an
// adversarial attack — deterministic. internal/replay implements that
// substitution, and the delta-debugging shrinker there minimises violating
// logs by deleting operation groups while the violation persists.
//
// Logs live in memory as *Log (cloneable, so speculative forks can carry
// them) and on disk in the NFT binary format (see codec.go); cmd/nftrace is
// the command-line surface.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/ioa"
)

// Kind identifies the type of a trace event.
type Kind uint8

const (
	// KindSubmit is the operation sim.Runner.SubmitMsg(payload): a
	// send_msg action handing one message to the transmitter.
	KindSubmit Kind = iota + 1
	// KindTransmit is the operation sim.Runner.StepTransmit(): one
	// transmitter output step (which may find no enabled output).
	KindTransmit
	// KindDrain is the operation sim.Runner.DrainAcks(): drain every
	// enabled receiver output through the ack channel.
	KindDrain
	// KindStale is the operation sim.Runner.DeliverStale(dir, pkt): the
	// adversary's replay move, delivering one delayed in-transit copy.
	KindStale
	// KindSendPkt observes a send_pkt action on channel Dir.
	KindSendPkt
	// KindRecvPkt observes a receive_pkt action on channel Dir.
	KindRecvPkt
	// KindRecvMsg observes a receive_msg action (delivery to the higher
	// layer).
	KindRecvMsg
	// KindDecision observes a channel policy verdict on the most recent
	// send on channel Dir. The decision stream is the recorded channel
	// nondeterminism that replay substitutes for the live policy.
	KindDecision
	// KindRNG observes one raw RNG draw (the IEEE-754 bits of a float64),
	// emitted by RecordingSource for audit of probabilistic policies.
	KindRNG
	// KindVerdict records a checker verdict over the completed execution;
	// by convention it is the final event of a log.
	KindVerdict
	// KindDropStale is the operation sim.Runner.DropStale(dir, pkt): the
	// adversary's loss move, permanently discarding one delayed in-transit
	// copy. Added after version 1 of the on-disk format shipped; readers
	// predating it fail loudly on the unknown kind rather than
	// misinterpreting the stream.
	KindDropStale
	// KindCorrupt is the operation sim.Runner.CorruptStart(tIdx, rIdx): the
	// self-stabilization adversary's before-time-0 move, replacing the
	// endpoint start states with entries tIdx/rIdx of the protocol's
	// declared corruption space. Index carries tIdx and Bits carries rIdx.
	// Requires on-disk format version 2 (see codec.go).
	KindCorrupt
	// KindPoison is the operation sim.Runner.Poison(dir, pkt): pre-loading
	// one packet onto a channel "in transit since before time 0". Like
	// KindCorrupt it is a corrupted-start move that, by convention, precedes
	// every ordinary operation in a log. Requires on-disk format version 2.
	KindPoison
)

// String returns the kind's wire name.
func (k Kind) String() string {
	switch k {
	case KindSubmit:
		return "submit"
	case KindTransmit:
		return "transmit"
	case KindDrain:
		return "drain"
	case KindStale:
		return "stale"
	case KindDropStale:
		return "drop_stale"
	case KindCorrupt:
		return "corrupt"
	case KindPoison:
		return "poison"
	case KindSendPkt:
		return "send_pkt"
	case KindRecvPkt:
		return "recv_pkt"
	case KindRecvMsg:
		return "recv_msg"
	case KindDecision:
		return "decision"
	case KindRNG:
		return "rng"
	case KindVerdict:
		return "verdict"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// IsOp reports whether the kind is a driver operation (re-issued on replay)
// as opposed to an observation (compared on replay).
func (k Kind) IsOp() bool {
	switch k {
	case KindSubmit, KindTransmit, KindDrain, KindStale, KindDropStale,
		KindCorrupt, KindPoison:
		return true
	}
	return false
}

// Decision mirrors channel.Decision without importing internal/channel
// (channel imports this package for capture wrappers). The numeric values
// are identical by construction.
type Decision uint8

const (
	// DeliverNow delivers the packet immediately.
	DeliverNow Decision = 1
	// Delay leaves the packet in transit.
	Delay Decision = 2
	// Drop discards the packet permanently.
	Drop Decision = 3
)

func (d Decision) String() string {
	switch d {
	case DeliverNow:
		return "deliver"
	case Delay:
		return "delay"
	case Drop:
		return "drop"
	default:
		return fmt.Sprintf("decision(%d)", uint8(d))
	}
}

// Event is one record of a trace log. Which fields are meaningful depends
// on Kind; unused fields are zero and are not encoded on disk.
type Event struct {
	Kind Kind `json:"kind"`
	// Dir is set for SendPkt, RecvPkt, Stale and Decision events.
	Dir ioa.Dir `json:"dir,omitempty"`
	// Pkt is set for SendPkt, RecvPkt and Stale events.
	Pkt ioa.Packet `json:"pkt,omitempty"`
	// Msg is set for Submit and RecvMsg events.
	Msg ioa.Message `json:"msg,omitempty"`
	// Decision is set for Decision events.
	Decision Decision `json:"decision,omitempty"`
	// Bits carries the raw draw for RNG events.
	Bits uint64 `json:"bits,omitempty"`
	// Property, Index and Detail mirror ioa.Violation for Verdict events.
	// An empty Property on a Verdict event means "no violation" — the
	// checkers passed on the recorded execution.
	Property string `json:"property,omitempty"`
	Index    int    `json:"index,omitempty"`
	Detail   string `json:"detail,omitempty"`
}

// String renders the event for diagnostics.
func (e Event) String() string {
	switch e.Kind {
	case KindSubmit, KindRecvMsg:
		return fmt.Sprintf("%s(%s)", e.Kind, e.Msg)
	case KindSendPkt, KindRecvPkt, KindStale, KindDropStale, KindPoison:
		return fmt.Sprintf("%s^%s(%s)", e.Kind, e.Dir, e.Pkt)
	case KindCorrupt:
		return fmt.Sprintf("%s(t=%d r=%d)", e.Kind, e.Index, e.Bits)
	case KindDecision:
		return fmt.Sprintf("%s^%s=%s", e.Kind, e.Dir, e.Decision)
	case KindRNG:
		return fmt.Sprintf("%s(%#x)", e.Kind, e.Bits)
	case KindVerdict:
		if e.Property == "" {
			return "verdict(ok)"
		}
		return fmt.Sprintf("verdict(%s@%d)", e.Property, e.Index)
	default:
		return e.Kind.String()
	}
}

// Sink consumes trace events. *Log and *Writer implement it, as does
// SyncSink; producers (sim.Runner, channel.Capture, netlink stations) emit
// into a Sink without caring where the events land.
type Sink interface {
	Emit(Event)
}

// Meta keys conventionally present in logs written by this repo.
const (
	// MetaProtocol names the protocol under test (protocol.Protocol.Name).
	MetaProtocol = "protocol"
	// MetaKind distinguishes trace provenance: "sim" for simulator runs
	// (deterministically replayable), "soak" for lock-step netlink soak
	// sessions (wire-driven but decision-complete, equally replayable),
	// "netlink" for observational socket sessions, "shrunk" for minimised
	// traces.
	MetaKind = "kind"
	// MetaSource is free-form provenance (tool name, attack, workload).
	MetaSource = "source"
)

// Log is an in-memory trace: metadata plus the event sequence. It is the
// Sink used by the simulator, because speculative execution forks need to
// clone their partial logs (streaming writers cannot rewind).
type Log struct {
	Meta   map[string]string `json:"meta,omitempty"`
	Events []Event           `json:"events"`
}

// NewLog returns an empty log with the given metadata (which may be nil).
func NewLog(meta map[string]string) *Log {
	m := make(map[string]string, len(meta))
	//nfvet:allow maprange (order-insensitive copy into another map)
	for k, v := range meta {
		m[k] = v
	}
	return &Log{Meta: m}
}

// Emit implements Sink.
func (l *Log) Emit(e Event) { l.Events = append(l.Events, e) }

// Len reports the number of recorded events.
func (l *Log) Len() int { return len(l.Events) }

// SetMeta sets a metadata key, allocating the map if needed.
func (l *Log) SetMeta(key, val string) {
	if l.Meta == nil {
		l.Meta = make(map[string]string)
	}
	l.Meta[key] = val
}

// Clone returns an independent deep copy of the log.
func (l *Log) Clone() *Log {
	c := NewLog(l.Meta)
	c.Events = make([]Event, len(l.Events))
	copy(c.Events, l.Events)
	return c
}

// Verdict returns the final Verdict event's violation, if the log carries
// one. ok reports whether a verdict event is present at all; a present
// verdict with a nil violation means the recorded execution passed the
// checkers.
func (l *Log) Verdict() (v *ioa.Violation, ok bool) {
	for i := len(l.Events) - 1; i >= 0; i-- {
		e := l.Events[i]
		if e.Kind != KindVerdict {
			continue
		}
		if e.Property == "" {
			return nil, true
		}
		return &ioa.Violation{Property: e.Property, Index: e.Index, Detail: e.Detail}, true
	}
	return nil, false
}

// IOATrace projects the log's observation events onto an ioa.Trace, so the
// correctness checkers (PL1, DL1–DL3) can run over a recorded execution
// without re-driving it. Submit maps to send_msg, RecvMsg to receive_msg,
// SendPkt/RecvPkt to their physical-layer actions; operations and decisions
// leave no ioa footprint.
func (l *Log) IOATrace() ioa.Trace {
	var tr ioa.Trace
	for _, e := range l.Events {
		switch e.Kind {
		case KindSubmit:
			tr = append(tr, ioa.Event{Kind: ioa.SendMsg, Msg: e.Msg})
		case KindRecvMsg:
			tr = append(tr, ioa.Event{Kind: ioa.ReceiveMsg, Msg: e.Msg})
		case KindSendPkt:
			tr = append(tr, ioa.Event{Kind: ioa.SendPkt, Dir: e.Dir, Pkt: e.Pkt})
		case KindRecvPkt:
			tr = append(tr, ioa.Event{Kind: ioa.ReceivePkt, Dir: e.Dir, Pkt: e.Pkt})
		}
	}
	return tr
}

// Decisions extracts the recorded channel-policy decision stream for one
// direction, in order — the channel nondeterminism that replay substitutes
// for a live policy.
func (l *Log) Decisions(d ioa.Dir) []Decision {
	var out []Decision
	for _, e := range l.Events {
		if e.Kind == KindDecision && e.Dir == d {
			out = append(out, e.Decision)
		}
	}
	return out
}

// String renders the log one event per line, for diagnostics. Metadata is
// rendered in sorted key order so the output is byte-stable across runs.
func (l *Log) String() string {
	var b strings.Builder
	keys := make([]string, 0, len(l.Meta))
	//nfvet:allow maprange (keys are collected then sorted before use)
	for k := range l.Meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "# %s = %s\n", k, l.Meta[k])
	}
	for i, e := range l.Events {
		fmt.Fprintf(&b, "%4d  %s\n", i, e)
	}
	return b.String()
}

// SyncSink serialises concurrent emissions into one underlying sink. The
// netlink stations record from independent goroutines; sharing one SyncSink
// between a sender and a receiver yields a single, totally ordered session
// log.
type SyncSink struct {
	mu    sync.Mutex
	inner Sink
}

// NewSyncSink wraps inner with a mutex.
func NewSyncSink(inner Sink) *SyncSink { return &SyncSink{inner: inner} }

// Emit implements Sink.
func (s *SyncSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inner.Emit(e)
}

// RecordingSource wraps a rand.Source64 so every draw is also emitted as a
// KindRNG event. Probabilistic channel policies built over a recording
// source leave an auditable record of the raw randomness behind their
// decisions (the decisions themselves are what replay consumes).
type RecordingSource struct {
	Src interface {
		Int63() int64
		Uint64() uint64
		Seed(int64)
	}
	Sink Sink
}

// Int63 implements rand.Source.
func (r *RecordingSource) Int63() int64 {
	v := r.Src.Int63()
	r.Sink.Emit(Event{Kind: KindRNG, Bits: uint64(v)})
	return v
}

// Uint64 implements rand.Source64.
func (r *RecordingSource) Uint64() uint64 {
	v := r.Src.Uint64()
	r.Sink.Emit(Event{Kind: KindRNG, Bits: v})
	return v
}

// Seed implements rand.Source.
func (r *RecordingSource) Seed(seed int64) { r.Src.Seed(seed) }
