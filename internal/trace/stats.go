package trace

import "repro/internal/ioa"

// Stats is an overview of a trace log, in the spirit of a record/replay
// tool's statistics pass: how many events of each kind, the traffic split
// per channel, and the alphabet the execution used.
type Stats struct {
	// Events is the total event count.
	Events int
	// Ops is the number of driver operations (replayable moves).
	Ops int
	// ByKind counts events per kind.
	ByKind map[Kind]int
	// DataSends/AckSends and DataRecvs/AckRecvs split packet traffic by
	// channel direction.
	DataSends, AckSends int
	DataRecvs, AckRecvs int
	// Stales counts adversarial stale-copy deliveries.
	Stales int
	// StaleDrops counts adversarial in-transit drops (DropStale ops).
	StaleDrops int
	// Messages and Deliveries count send_msg and receive_msg actions.
	Messages, Deliveries int
	// Headers is the number of distinct packet headers observed.
	Headers int
	// Decisions counts channel-policy verdicts per decision.
	Decisions map[Decision]int
	// Verdict is the recorded checker verdict property ("" if the log has
	// no verdict event or the execution passed).
	Verdict string
	// HasVerdict reports whether a verdict event is present.
	HasVerdict bool
}

// Collect computes Stats over a log.
func Collect(l *Log) Stats {
	s := Stats{
		ByKind:    make(map[Kind]int),
		Decisions: make(map[Decision]int),
	}
	headers := make(map[string]bool)
	for _, e := range l.Events {
		s.Events++
		s.ByKind[e.Kind]++
		if e.Kind.IsOp() {
			s.Ops++
		}
		switch e.Kind {
		case KindSubmit:
			s.Messages++
		case KindRecvMsg:
			s.Deliveries++
		case KindSendPkt:
			headers[e.Pkt.Header] = true
			if e.Dir == ioa.TtoR {
				s.DataSends++
			} else {
				s.AckSends++
			}
		case KindRecvPkt:
			headers[e.Pkt.Header] = true
			if e.Dir == ioa.TtoR {
				s.DataRecvs++
			} else {
				s.AckRecvs++
			}
		case KindStale:
			s.Stales++
		case KindDropStale:
			s.StaleDrops++
		case KindDecision:
			s.Decisions[e.Decision]++
		case KindVerdict:
			s.HasVerdict = true
			s.Verdict = e.Property
		}
	}
	s.Headers = len(headers)
	return s
}
