package trace

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/ioa"
)

func sampleLog() *Log {
	l := NewLog(map[string]string{MetaProtocol: "altbit", MetaKind: "sim"})
	l.Emit(Event{Kind: KindSubmit, Msg: ioa.Message{ID: 0, Payload: "m0"}})
	l.Emit(Event{Kind: KindTransmit})
	l.Emit(Event{Kind: KindSendPkt, Dir: ioa.TtoR, Pkt: ioa.Packet{Header: "d0", Payload: "m0"}})
	l.Emit(Event{Kind: KindDecision, Dir: ioa.TtoR, Decision: Delay})
	l.Emit(Event{Kind: KindDrain})
	l.Emit(Event{Kind: KindTransmit})
	l.Emit(Event{Kind: KindSendPkt, Dir: ioa.TtoR, Pkt: ioa.Packet{Header: "d0", Payload: "m0"}})
	l.Emit(Event{Kind: KindDecision, Dir: ioa.TtoR, Decision: DeliverNow})
	l.Emit(Event{Kind: KindRecvPkt, Dir: ioa.TtoR, Pkt: ioa.Packet{Header: "d0", Payload: "m0"}})
	l.Emit(Event{Kind: KindRecvMsg, Msg: ioa.Message{ID: 0, Payload: "m0"}})
	l.Emit(Event{Kind: KindDrain})
	l.Emit(Event{Kind: KindSendPkt, Dir: ioa.RtoT, Pkt: ioa.Packet{Header: "a0"}})
	l.Emit(Event{Kind: KindDecision, Dir: ioa.RtoT, Decision: DeliverNow})
	l.Emit(Event{Kind: KindRecvPkt, Dir: ioa.RtoT, Pkt: ioa.Packet{Header: "a0"}})
	l.Emit(Event{Kind: KindStale, Dir: ioa.TtoR, Pkt: ioa.Packet{Header: "d0", Payload: "m0"}})
	l.Emit(Event{Kind: KindRNG, Bits: 0xdeadbeef})
	l.Emit(Event{Kind: KindVerdict, Property: "DL1", Index: 9, Detail: "duplicate delivery"})
	return l
}

func TestCodecRoundTrip(t *testing.T) {
	l := sampleLog()
	var buf bytes.Buffer
	if err := l.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	if !reflect.DeepEqual(got.Meta, l.Meta) {
		t.Errorf("meta mismatch: got %v want %v", got.Meta, l.Meta)
	}
	if !reflect.DeepEqual(got.Events, l.Events) {
		t.Errorf("events mismatch:\ngot  %v\nwant %v", got.Events, l.Events)
	}
}

func TestFileRoundTrip(t *testing.T) {
	l := sampleLog()
	path := t.TempDir() + "/t.nft"
	if err := WriteFile(path, l); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !reflect.DeepEqual(got, l) {
		t.Errorf("file round trip mismatch")
	}
}

func TestStreamingReader(t *testing.T) {
	l := sampleLog()
	var buf bytes.Buffer
	if err := l.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Meta()[MetaProtocol] != "altbit" {
		t.Errorf("meta protocol = %q", r.Meta()[MetaProtocol])
	}
	n := 0
	for {
		_, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next after %d events: %v", n, err)
		}
		n++
	}
	if n != l.Len() {
		t.Errorf("streamed %d events, want %d", n, l.Len())
	}
}

func TestRejectsMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty":       nil,
		"bad magic":   []byte("NOPE!\x01\x00"),
		"bad version": []byte(magic + "\x7f\x00"),
		"bad kind":    append(headerBytes(t), 0xee),
	}
	for name, b := range cases {
		if _, err := ReadLog(bytes.NewReader(b)); err == nil {
			t.Errorf("%s: expected decode error", name)
		}
	}
	// Truncation at an event boundary yields a (valid) shorter log, but a
	// cut strictly inside an event must error, never silently succeed.
	l := sampleLog()
	var hdr bytes.Buffer
	if err := NewLog(l.Meta).Encode(&hdr); err != nil {
		t.Fatal(err)
	}
	boundaries := map[int]bool{}
	off := hdr.Len()
	boundaries[off] = true
	for _, e := range l.Events {
		off += len(appendEvent(nil, e))
		boundaries[off] = true
	}
	var buf bytes.Buffer
	if err := l.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := len(full) - 1; cut > hdr.Len(); cut-- {
		got, err := ReadLog(bytes.NewReader(full[:cut]))
		if boundaries[cut] {
			if err != nil {
				t.Fatalf("boundary truncation at %d rejected: %v", cut, err)
			}
			continue
		}
		if err == nil {
			t.Fatalf("mid-event truncation at %d of %d accepted (%d events)", cut, len(full), got.Len())
		}
	}
}

func headerBytes(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := NewLog(nil).Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestVerdictAndProjections(t *testing.T) {
	l := sampleLog()
	v, ok := l.Verdict()
	if !ok || v == nil || v.Property != "DL1" || v.Index != 9 {
		t.Fatalf("Verdict = %v, %v", v, ok)
	}
	ds := l.Decisions(ioa.TtoR)
	if want := []Decision{Delay, DeliverNow}; !reflect.DeepEqual(ds, want) {
		t.Errorf("Decisions(t→r) = %v want %v", ds, want)
	}
	tr := l.IOATrace()
	c := tr.Count()
	if c.SM != 1 || c.RM != 1 || c.SPtoR != 2 || c.RPtoR != 1 || c.SPtoT != 1 || c.RPtoT != 1 {
		t.Errorf("projected counters = %+v", c)
	}
	// The sample's projected execution is PL1/DL1-clean.
	if err := ioa.CheckSafety(tr); err != nil {
		t.Errorf("CheckSafety(projection) = %v", err)
	}
}

func TestStats(t *testing.T) {
	s := Collect(sampleLog())
	if s.Events != 17 || s.Ops != 6 {
		t.Errorf("Events=%d Ops=%d", s.Events, s.Ops)
	}
	if s.DataSends != 2 || s.AckSends != 1 || s.DataRecvs != 1 || s.AckRecvs != 1 {
		t.Errorf("traffic split: %+v", s)
	}
	if s.Headers != 2 || s.Messages != 1 || s.Deliveries != 1 || s.Stales != 1 {
		t.Errorf("alphabet/messages: %+v", s)
	}
	if !s.HasVerdict || s.Verdict != "DL1" {
		t.Errorf("verdict: %+v", s)
	}
	if s.Decisions[DeliverNow] != 2 || s.Decisions[Delay] != 1 {
		t.Errorf("decisions: %v", s.Decisions)
	}
}

func TestCloneIndependence(t *testing.T) {
	l := sampleLog()
	c := l.Clone()
	c.Emit(Event{Kind: KindTransmit})
	c.SetMeta("extra", "1")
	if l.Len() == c.Len() {
		t.Error("clone shares event slice")
	}
	if _, ok := l.Meta["extra"]; ok {
		t.Error("clone shares meta map")
	}
}

func TestSyncSinkConcurrent(t *testing.T) {
	l := NewLog(nil)
	s := NewSyncSink(l)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				s.Emit(Event{Kind: KindTransmit})
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if l.Len() != 4000 {
		t.Errorf("len = %d", l.Len())
	}
}

func TestRecordingSource(t *testing.T) {
	l := NewLog(nil)
	src := &RecordingSource{Src: rand.NewSource(7).(rand.Source64), Sink: l}
	rng := rand.New(src)
	for i := 0; i < 10; i++ {
		rng.Float64()
	}
	if l.Len() == 0 {
		t.Fatal("no RNG events recorded")
	}
	for _, e := range l.Events {
		if e.Kind != KindRNG {
			t.Fatalf("unexpected event %v", e)
		}
	}
}

func TestLogString(t *testing.T) {
	out := sampleLog().String()
	for _, want := range []string{"submit", "decision", "verdict(DL1@9)", "# protocol = altbit"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}
