package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/ioa"
)

// The NFT on-disk format:
//
//	magic   "NFTRC"            (5 bytes)
//	version 0x01 or 0x02       (1 byte)
//	meta    uvarint count, then count × (string key, string value)
//	events  until EOF: kind byte + kind-specific fields
//
// Strings are uvarint length + bytes; signed ints are zigzag varints;
// directions and decisions are single bytes. The format is append-only and
// self-describing: a reader needs nothing but the file, and unknown trailing
// bytes fail loudly rather than silently.
//
// Version 2 differs from version 1 only in admitting the corrupted-start
// operations KindCorrupt and KindPoison (internal/stabilize). Encode stamps
// version 2 only when a log actually contains one of them, so every legacy
// log still round-trips byte-identically as version 1, and a version-1
// reader rejects corrupted-start logs at the header with a clear
// unsupported-version error instead of choking mid-stream on an unknown
// kind.

const (
	magic = "NFTRC"
	// versionV1 is the original format; versionV2 adds the corrupted-start
	// event kinds. version is the newest version this package reads.
	versionV1 = 1
	versionV2 = 2
	version   = versionV2
)

// requiresV2 reports whether the event kind is only encodable in format
// version 2.
func requiresV2(k Kind) bool { return k == KindCorrupt || k == KindPoison }

// ErrFormat is wrapped by decode errors for malformed trace files.
var ErrFormat = errors.New("trace: malformed trace file")

// Writer streams a trace log to an io.Writer with bounded memory: the
// header is written on construction and each event is encoded as it is
// emitted. Writer implements Sink; the first encoding error is latched and
// reported by Err and Flush.
type Writer struct {
	bw      *bufio.Writer
	buf     []byte
	version byte
	err     error
}

// NewWriter writes a version-1 file header (magic, version, meta) and
// returns a streaming writer. Emitting a corrupted-start event (KindCorrupt,
// KindPoison) through a version-1 writer latches an error — the header is
// already on the wire, so the stream cannot be upgraded; use
// NewWriterVersion with versionV2 (as Log.Encode does automatically) when
// the log may contain them.
func NewWriter(w io.Writer, meta map[string]string) (*Writer, error) {
	return NewWriterVersion(w, meta, versionV1)
}

// NewWriterVersion is NewWriter with an explicit format version stamp.
func NewWriterVersion(w io.Writer, meta map[string]string, v byte) (*Writer, error) {
	if v < versionV1 || v > version {
		return nil, fmt.Errorf("trace: unsupported writer version %d (have %d)", v, version)
	}
	tw := &Writer{bw: bufio.NewWriter(w), version: v}
	if _, err := tw.bw.WriteString(magic); err != nil {
		return nil, err
	}
	if err := tw.bw.WriteByte(v); err != nil {
		return nil, err
	}
	keys := make([]string, 0, len(meta))
	//nfvet:allow maprange (keys are collected then sorted before use)
	for k := range meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	tw.buf = binary.AppendUvarint(tw.buf[:0], uint64(len(keys)))
	for _, k := range keys {
		tw.buf = appendString(tw.buf, k)
		tw.buf = appendString(tw.buf, meta[k])
	}
	if _, err := tw.bw.Write(tw.buf); err != nil {
		return nil, err
	}
	return tw, nil
}

// Emit implements Sink. Errors are latched; see Err.
func (tw *Writer) Emit(e Event) {
	if tw.err != nil {
		return
	}
	if requiresV2(e.Kind) && tw.version < versionV2 {
		tw.err = fmt.Errorf("trace: event %s requires format version %d, writer stamped version %d", e.Kind, versionV2, tw.version)
		return
	}
	tw.buf = appendEvent(tw.buf[:0], e)
	if _, err := tw.bw.Write(tw.buf); err != nil {
		tw.err = err
	}
}

// Err reports the first emission error, if any.
func (tw *Writer) Err() error { return tw.err }

// Flush flushes buffered events and reports any latched error.
func (tw *Writer) Flush() error {
	if tw.err != nil {
		return tw.err
	}
	return tw.bw.Flush()
}

// Reader streams a trace log from an io.Reader.
type Reader struct {
	br      *bufio.Reader
	meta    map[string]string
	version byte
}

// NewReader validates the header and returns a streaming reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic)+1)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrFormat, err)
	}
	if string(head[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrFormat, head[:len(magic)])
	}
	v := head[len(magic)]
	if v < versionV1 || v > version {
		return nil, fmt.Errorf("%w: unsupported version %d (have %d)", ErrFormat, v, version)
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: meta count: %v", ErrFormat, err)
	}
	// Cap the allocation hint: n is attacker-controlled in a corrupt file,
	// and each entry needs at least two bytes of input anyway.
	hint := n
	if hint > 1024 {
		hint = 1024
	}
	meta := make(map[string]string, hint)
	for i := uint64(0); i < n; i++ {
		k, err := readString(br)
		if err != nil {
			return nil, fmt.Errorf("%w: meta key: %v", ErrFormat, err)
		}
		v, err := readString(br)
		if err != nil {
			return nil, fmt.Errorf("%w: meta value: %v", ErrFormat, err)
		}
		meta[k] = v
	}
	return &Reader{br: br, meta: meta, version: v}, nil
}

// Meta returns the file's metadata.
func (tr *Reader) Meta() map[string]string { return tr.meta }

// Version returns the file's format version.
func (tr *Reader) Version() byte { return tr.version }

// Next decodes the next event; it returns io.EOF at a clean end of log.
// Corrupted-start events in a stream stamped version 1 are rejected: a
// version-1 producer cannot have written them, so their presence means the
// file is corrupt.
func (tr *Reader) Next() (Event, error) {
	e, err := readEvent(tr.br)
	if err == nil && requiresV2(e.Kind) && tr.version < versionV2 {
		return Event{}, fmt.Errorf("%w: event %s requires format version %d, file stamped version %d", ErrFormat, e.Kind, versionV2, tr.version)
	}
	return e, err
}

// Encode writes the whole log to w in the NFT format, stamping version 2
// only when the log contains corrupted-start events — legacy logs encode
// byte-identically to the version-1 format.
func (l *Log) Encode(w io.Writer) error {
	v := byte(versionV1)
	for _, e := range l.Events {
		if requiresV2(e.Kind) {
			v = versionV2
			break
		}
	}
	tw, err := NewWriterVersion(w, l.Meta, v)
	if err != nil {
		return err
	}
	for _, e := range l.Events {
		tw.Emit(e)
	}
	return tw.Flush()
}

// ReadLog decodes a complete log from r.
func ReadLog(r io.Reader) (*Log, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	l := NewLog(tr.Meta())
	for {
		e, err := tr.Next()
		if err == io.EOF {
			return l, nil
		}
		if err != nil {
			return nil, err
		}
		l.Events = append(l.Events, e)
	}
}

// WriteFile writes the log to path in the NFT format.
func WriteFile(path string, l *Log) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := l.Encode(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads an NFT trace file.
func ReadFile(path string) (*Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadLog(f)
}

// --- event encoding ---

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendEvent(b []byte, e Event) []byte {
	b = append(b, byte(e.Kind))
	switch e.Kind {
	case KindSubmit, KindRecvMsg:
		b = binary.AppendVarint(b, int64(e.Msg.ID))
		b = appendString(b, e.Msg.Payload)
	case KindTransmit, KindDrain:
		// no fields
	case KindStale, KindDropStale, KindSendPkt, KindRecvPkt, KindPoison:
		b = append(b, byte(e.Dir))
		b = appendString(b, e.Pkt.Header)
		b = appendString(b, e.Pkt.Payload)
	case KindCorrupt:
		b = binary.AppendVarint(b, int64(e.Index))
		b = binary.AppendUvarint(b, e.Bits)
	case KindDecision:
		b = append(b, byte(e.Dir), byte(e.Decision))
	case KindRNG:
		b = binary.AppendUvarint(b, e.Bits)
	case KindVerdict:
		b = appendString(b, e.Property)
		b = binary.AppendVarint(b, int64(e.Index))
		b = appendString(b, e.Detail)
	}
	return b
}

func readString(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	if n > 1<<24 {
		return "", fmt.Errorf("implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func readEvent(br *bufio.Reader) (Event, error) {
	kb, err := br.ReadByte()
	if err == io.EOF {
		return Event{}, io.EOF
	}
	if err != nil {
		return Event{}, fmt.Errorf("%w: event kind: %v", ErrFormat, err)
	}
	e := Event{Kind: Kind(kb)}
	fail := func(field string, err error) (Event, error) {
		return Event{}, fmt.Errorf("%w: %s %s: %v", ErrFormat, e.Kind, field, err)
	}
	switch e.Kind {
	case KindSubmit, KindRecvMsg:
		id, err := binary.ReadVarint(br)
		if err != nil {
			return fail("msg id", err)
		}
		e.Msg.ID = int(id)
		if e.Msg.Payload, err = readString(br); err != nil {
			return fail("payload", err)
		}
	case KindTransmit, KindDrain:
		// no fields
	case KindStale, KindDropStale, KindSendPkt, KindRecvPkt, KindPoison:
		db, err := br.ReadByte()
		if err != nil {
			return fail("dir", err)
		}
		e.Dir = ioa.Dir(db)
		if e.Pkt.Header, err = readString(br); err != nil {
			return fail("header", err)
		}
		if e.Pkt.Payload, err = readString(br); err != nil {
			return fail("payload", err)
		}
	case KindCorrupt:
		idx, err := binary.ReadVarint(br)
		if err != nil {
			return fail("tidx", err)
		}
		e.Index = int(idx)
		if e.Bits, err = binary.ReadUvarint(br); err != nil {
			return fail("ridx", err)
		}
	case KindDecision:
		db, err := br.ReadByte()
		if err != nil {
			return fail("dir", err)
		}
		dc, err := br.ReadByte()
		if err != nil {
			return fail("decision", err)
		}
		e.Dir, e.Decision = ioa.Dir(db), Decision(dc)
	case KindRNG:
		bits, err := binary.ReadUvarint(br)
		if err != nil {
			return fail("bits", err)
		}
		e.Bits = bits
	case KindVerdict:
		var err error
		if e.Property, err = readString(br); err != nil {
			return fail("property", err)
		}
		idx, err := binary.ReadVarint(br)
		if err != nil {
			return fail("index", err)
		}
		e.Index = int(idx)
		if e.Detail, err = readString(br); err != nil {
			return fail("detail", err)
		}
	default:
		return Event{}, fmt.Errorf("%w: unknown event kind %d", ErrFormat, kb)
	}
	return e, nil
}
