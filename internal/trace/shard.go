package trace

// Sharded trace storage for soak runs: thousands of per-session NFT logs
// packed into a fixed number of shard files, indexed by a manifest.
//
// A shard file is a concatenation of length-framed NFT blobs:
//
//	uvarint blobLen | blobLen bytes of Log.Encode output | ...
//
// Each blob is byte-identical to what Log.Encode would have written to a
// standalone file — the framing is outside the NFT stream — so extracting a
// session from a shard and decoding a single-session recording are the same
// operation (the shard property test pins this).
//
// The NFMAN manifest format:
//
//	magic   "NFMAN"          (5 bytes)
//	version 0x01             (1 byte)
//	shards  uvarint count, then count × string (shard file name)
//	entries uvarint count, then count × entry:
//	        string session | uvarint shard | uvarint offset |
//	        uvarint length | string protocol | string verdict |
//	        uvarint events | uvarint ops | uvarint messages |
//	        uvarint deliveries
//
// Strings reuse the NFT codec's uvarint-length encoding. Entries are sorted
// by session name, so the manifest's entry order depends only on the set of
// recorded sessions; only the byte offsets reflect the interleaving that
// packed each shard.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

const (
	manifestMagic   = "NFMAN"
	manifestVersion = 1
	// ManifestFile is the manifest's file name inside a shard directory.
	ManifestFile = "manifest.nfm"
)

// ErrManifest is wrapped by manifest decode errors.
var ErrManifest = errors.New("trace: malformed manifest")

// ManifestEntry locates and summarises one recorded session.
type ManifestEntry struct {
	// Session is the caller-chosen session key (unique per store).
	Session string
	// Shard indexes Manifest.Shards; Offset is the byte position of the
	// session's length frame inside that shard file; Length is the NFT blob
	// size (excluding the frame).
	Shard  int
	Offset int64
	Length int64
	// Protocol and Verdict mirror the log's metadata and final verdict
	// event ("" means clean), so violating sessions are findable without
	// opening any shard.
	Protocol string
	Verdict  string
	// Events, Ops, Messages and Deliveries are the log's Stats headline.
	Events, Ops, Messages, Deliveries int
}

// Manifest indexes a shard directory.
type Manifest struct {
	// Shards are the shard file names, relative to the directory.
	Shards []string
	// Entries are sorted by Session.
	Entries []ManifestEntry
}

// Lookup finds a session's entry.
func (m *Manifest) Lookup(session string) (ManifestEntry, bool) {
	i := sort.Search(len(m.Entries), func(i int) bool { return m.Entries[i].Session >= session })
	if i < len(m.Entries) && m.Entries[i].Session == session {
		return m.Entries[i], true
	}
	return ManifestEntry{}, false
}

// Violations returns the entries whose recorded verdict is a violation.
func (m *Manifest) Violations() []ManifestEntry {
	var out []ManifestEntry
	for _, e := range m.Entries {
		if e.Verdict != "" {
			out = append(out, e)
		}
	}
	return out
}

// EncodeManifest writes m in the NFMAN format.
func EncodeManifest(w io.Writer, m *Manifest) error {
	var buf []byte
	buf = append(buf, manifestMagic...)
	buf = append(buf, manifestVersion)
	buf = binary.AppendUvarint(buf, uint64(len(m.Shards)))
	for _, s := range m.Shards {
		buf = appendString(buf, s)
	}
	buf = binary.AppendUvarint(buf, uint64(len(m.Entries)))
	for _, e := range m.Entries {
		buf = appendString(buf, e.Session)
		buf = binary.AppendUvarint(buf, uint64(e.Shard))
		buf = binary.AppendUvarint(buf, uint64(e.Offset))
		buf = binary.AppendUvarint(buf, uint64(e.Length))
		buf = appendString(buf, e.Protocol)
		buf = appendString(buf, e.Verdict)
		buf = binary.AppendUvarint(buf, uint64(e.Events))
		buf = binary.AppendUvarint(buf, uint64(e.Ops))
		buf = binary.AppendUvarint(buf, uint64(e.Messages))
		buf = binary.AppendUvarint(buf, uint64(e.Deliveries))
	}
	_, err := w.Write(buf)
	return err
}

// DecodeManifest reads an NFMAN manifest.
func DecodeManifest(r io.Reader) (*Manifest, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(manifestMagic)+1)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrManifest, err)
	}
	if string(head[:len(manifestMagic)]) != manifestMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrManifest, head[:len(manifestMagic)])
	}
	if v := head[len(manifestMagic)]; v != manifestVersion {
		return nil, fmt.Errorf("%w: unsupported version %d (have %d)", ErrManifest, v, manifestVersion)
	}
	uvar := func(field string) (uint64, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("%w: %s: %v", ErrManifest, field, err)
		}
		return n, nil
	}
	m := &Manifest{}
	nShards, err := uvar("shard count")
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nShards; i++ {
		s, err := readString(br)
		if err != nil {
			return nil, fmt.Errorf("%w: shard name: %v", ErrManifest, err)
		}
		m.Shards = append(m.Shards, s)
	}
	nEntries, err := uvar("entry count")
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nEntries; i++ {
		var e ManifestEntry
		if e.Session, err = readString(br); err != nil {
			return nil, fmt.Errorf("%w: session: %v", ErrManifest, err)
		}
		sh, err := uvar("shard index")
		if err != nil {
			return nil, err
		}
		e.Shard = int(sh)
		off, err := uvar("offset")
		if err != nil {
			return nil, err
		}
		e.Offset = int64(off)
		ln, err := uvar("length")
		if err != nil {
			return nil, err
		}
		e.Length = int64(ln)
		if e.Protocol, err = readString(br); err != nil {
			return nil, fmt.Errorf("%w: protocol: %v", ErrManifest, err)
		}
		if e.Verdict, err = readString(br); err != nil {
			return nil, fmt.Errorf("%w: verdict: %v", ErrManifest, err)
		}
		for _, f := range []struct {
			name string
			dst  *int
		}{
			{"events", &e.Events}, {"ops", &e.Ops},
			{"messages", &e.Messages}, {"deliveries", &e.Deliveries},
		} {
			v, err := uvar(f.name)
			if err != nil {
				return nil, err
			}
			*f.dst = int(v)
		}
		m.Entries = append(m.Entries, e)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("%w: trailing bytes", ErrManifest)
	}
	return m, nil
}

// WriteManifestFile writes the manifest into its shard directory.
func WriteManifestFile(dir string, m *Manifest) error {
	f, err := os.Create(filepath.Join(dir, ManifestFile))
	if err != nil {
		return err
	}
	if err := EncodeManifest(f, m); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// ReadManifestFile reads a shard directory's manifest.
func ReadManifestFile(dir string) (*Manifest, error) {
	f, err := os.Open(filepath.Join(dir, ManifestFile))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeManifest(f)
}

// ShardStore writes per-session logs into a fixed set of shard files,
// concurrently. Sessions are assigned to shards by name hash; writes to
// different shards proceed in parallel, writes to the same shard serialise
// on its lock. Close flushes every shard and writes the manifest.
type ShardStore struct {
	dir    string
	shards []*shardFile

	mu      sync.Mutex
	seen    map[string]bool
	entries []ManifestEntry
	closed  bool
}

type shardFile struct {
	mu   sync.Mutex
	name string
	f    *os.File
	w    *bufio.Writer
	off  int64
}

// NewShardStore creates dir (if needed) and opens the given number of shard
// files inside it.
func NewShardStore(dir string, shards int) (*ShardStore, error) {
	if shards <= 0 {
		shards = 8
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &ShardStore{dir: dir, seen: make(map[string]bool)}
	for i := 0; i < shards; i++ {
		name := fmt.Sprintf("shard-%03d.nfts", i)
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			for _, sf := range s.shards {
				_ = sf.f.Close()
			}
			return nil, err
		}
		s.shards = append(s.shards, &shardFile{name: name, f: f, w: bufio.NewWriter(f)})
	}
	return s, nil
}

// Dir reports the store's directory.
func (s *ShardStore) Dir() string { return s.dir }

// shardIndex assigns a session to a shard by FNV-32a hash.
func shardIndex(session string, n int) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(session))
	return int(h.Sum32() % uint32(n))
}

// Put records one session's log. Session keys must be unique; a duplicate
// Put is refused (the soak contract counts recordings, and a silent
// overwrite would hide a lost one).
func (s *ShardStore) Put(session string, l *Log) (ManifestEntry, error) {
	var buf bytes.Buffer
	if err := l.Encode(&buf); err != nil {
		return ManifestEntry{}, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ManifestEntry{}, errors.New("trace: shard store closed")
	}
	if s.seen[session] {
		s.mu.Unlock()
		return ManifestEntry{}, fmt.Errorf("trace: duplicate session %q", session)
	}
	s.seen[session] = true
	s.mu.Unlock()

	st := Collect(l)
	e := ManifestEntry{
		Session:    session,
		Length:     int64(buf.Len()),
		Protocol:   l.Meta[MetaProtocol],
		Verdict:    st.Verdict,
		Events:     st.Events,
		Ops:        st.Ops,
		Messages:   st.Messages,
		Deliveries: st.Deliveries,
	}
	e.Shard = shardIndex(session, len(s.shards))
	sf := s.shards[e.Shard]

	var frame [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(frame[:], uint64(buf.Len()))
	sf.mu.Lock()
	e.Offset = sf.off
	if _, err := sf.w.Write(frame[:n]); err != nil {
		sf.mu.Unlock()
		return ManifestEntry{}, err
	}
	if _, err := sf.w.Write(buf.Bytes()); err != nil {
		sf.mu.Unlock()
		return ManifestEntry{}, err
	}
	sf.off += int64(n) + int64(buf.Len())
	sf.mu.Unlock()

	s.mu.Lock()
	s.entries = append(s.entries, e)
	s.mu.Unlock()
	return e, nil
}

// Len reports the number of recorded sessions.
func (s *ShardStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Manifest snapshots the store's index, entries sorted by session.
func (s *ShardStore) Manifest() *Manifest {
	s.mu.Lock()
	entries := append([]ManifestEntry(nil), s.entries...)
	s.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].Session < entries[j].Session })
	m := &Manifest{Entries: entries}
	for _, sf := range s.shards {
		m.Shards = append(m.Shards, sf.name)
	}
	return m
}

// Close flushes and closes every shard file and writes the manifest.
func (s *ShardStore) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	var firstErr error
	for _, sf := range s.shards {
		sf.mu.Lock()
		if err := sf.w.Flush(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := sf.f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		sf.mu.Unlock()
	}
	if err := WriteManifestFile(s.dir, s.Manifest()); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// ReadShardLog extracts and decodes one session's log from a shard
// directory.
func ReadShardLog(dir string, m *Manifest, session string) (*Log, error) {
	e, ok := m.Lookup(session)
	if !ok {
		return nil, fmt.Errorf("trace: session %q not in manifest", session)
	}
	if e.Shard < 0 || e.Shard >= len(m.Shards) {
		return nil, fmt.Errorf("%w: shard index %d out of range", ErrManifest, e.Shard)
	}
	f, err := os.Open(filepath.Join(dir, m.Shards[e.Shard]))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if _, err := f.Seek(e.Offset, io.SeekStart); err != nil {
		return nil, err
	}
	br := bufio.NewReader(f)
	blobLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: frame at offset %d: %v", ErrManifest, e.Offset, err)
	}
	if int64(blobLen) != e.Length {
		return nil, fmt.Errorf("%w: frame length %d != manifest length %d", ErrManifest, blobLen, e.Length)
	}
	return ReadLog(io.LimitReader(br, e.Length))
}
