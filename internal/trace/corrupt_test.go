package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/ioa"
)

// corruptedLog is a corrupted-start trace prefix: the KindCorrupt control
// seed and per-channel KindPoison packets precede the first schedule op,
// which is the shape internal/run records for stabilize runs.
func corruptedLog() *Log {
	l := NewLog(map[string]string{MetaProtocol: "stabnaive", MetaKind: "sim"})
	l.Emit(Event{Kind: KindCorrupt, Index: 1, Bits: 2})
	l.Emit(Event{Kind: KindPoison, Dir: ioa.TtoR, Pkt: ioa.Packet{Header: "c0", Payload: "z"}})
	l.Emit(Event{Kind: KindPoison, Dir: ioa.RtoT, Pkt: ioa.Packet{Header: "k0"}})
	l.Emit(Event{Kind: KindTransmit})
	l.Emit(Event{Kind: KindSendPkt, Dir: ioa.TtoR, Pkt: ioa.Packet{Header: "d0", Payload: "m0"}})
	l.Emit(Event{Kind: KindVerdict, Property: "DL1", Index: 4, Detail: "charges exceed amnesty"})
	return l
}

// TestCorruptRoundTrip: a log holding corrupted-start events is stamped
// format version 2, round-trips exactly, and reports its version.
func TestCorruptRoundTrip(t *testing.T) {
	l := corruptedLog()
	var buf bytes.Buffer
	if err := l.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if v := buf.Bytes()[len(magic)]; v != versionV2 {
		t.Fatalf("corrupted-start log stamped version %d, want %d", v, versionV2)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.Version() != versionV2 {
		t.Fatalf("Reader.Version() = %d, want %d", r.Version(), versionV2)
	}
	got, err := ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	if !reflect.DeepEqual(got.Events, l.Events) {
		t.Errorf("events mismatch:\ngot  %v\nwant %v", got.Events, l.Events)
	}
}

// TestCleanLogStaysV1: logs without corrupted-start events must keep
// encoding byte-identically to the version-1 format — content-addressed
// corpus entries and committed golden witnesses depend on stable bytes.
func TestCleanLogStaysV1(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleLog().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if v := buf.Bytes()[len(magic)]; v != versionV1 {
		t.Fatalf("clean log stamped version %d, want %d", v, versionV1)
	}
}

// TestCorruptVersionSkew simulates a version-1 reader (and a corrupted
// file) meeting corrupted-start events: a v2 body re-stamped as version 1
// must be rejected at the first KindCorrupt/KindPoison event — a version-1
// producer cannot have written them — with an error naming the skew rather
// than a misparse.
func TestCorruptVersionSkew(t *testing.T) {
	var buf bytes.Buffer
	if err := corruptedLog().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	skewed := append([]byte(nil), buf.Bytes()...)
	skewed[len(magic)] = versionV1
	_, err := ReadLog(bytes.NewReader(skewed))
	if err == nil {
		t.Fatal("v2 events in a v1-stamped file decoded without error")
	}
	if !strings.Contains(err.Error(), "requires format version") {
		t.Fatalf("skew error does not name the version requirement: %v", err)
	}

	// Future versions are refused at the header, before any event parsing.
	skewed[len(magic)] = version + 1
	if _, err := ReadLog(bytes.NewReader(skewed)); err == nil ||
		!strings.Contains(err.Error(), "unsupported version") {
		t.Fatalf("future version accepted or misreported: %v", err)
	}
}

// TestWriterVersionLatch: a streaming version-1 writer cannot upgrade
// mid-stream, so emitting a corrupted-start event must latch an error that
// Flush reports, and constructing a writer for an unknown version fails.
func TestWriterVersionLatch(t *testing.T) {
	var buf bytes.Buffer
	tw, err := NewWriter(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	tw.Emit(Event{Kind: KindTransmit})
	tw.Emit(Event{Kind: KindPoison, Dir: ioa.TtoR, Pkt: ioa.Packet{Header: "c0"}})
	if tw.Err() == nil {
		t.Fatal("v1 writer accepted a KindPoison event")
	}
	if err := tw.Flush(); err == nil || !strings.Contains(err.Error(), "requires format version") {
		t.Fatalf("Flush does not report the latched version error: %v", err)
	}

	if _, err := NewWriterVersion(&buf, nil, version+1); err == nil {
		t.Fatal("NewWriterVersion accepted an unknown version")
	}
}
