package nonfifo

// The benchmark harness regenerates every experiment of DESIGN.md §4, one
// benchmark per table, plus micro-benchmarks of the substrate. Run:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks report the headline quantity of their table as
// a custom metric so that the paper-predicted shape is visible directly in
// benchmark output (e.g. E4 reports the fitted per-phase growth ratio).

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ioauto"
)

// --- experiment benchmarks (one per table) ---

func BenchmarkE0AltbitAttack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := core.RunE0()
		if err != nil {
			b.Fatal(err)
		}
		if res.Cert == nil {
			b.Fatal("altbit not broken")
		}
	}
}

func BenchmarkE1Boundness(b *testing.B) {
	var last core.E1Result
	for i := 0; i < b.N; i++ {
		res, err := core.RunE1()
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.MaxBoundness), "boundness")
	b.ReportMetric(float64(last.KT*last.KR), "ktkr")
}

func BenchmarkE2HeaderGrowth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.RunE2a([]int{1, 4, 16, 64}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2SpaceBlowup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.RunE2b(8, []int{0, 16, 64, 256}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2HeaderBudget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := core.RunE2c(3)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkE3InTransit(b *testing.B) {
	var rows []core.E3aRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = core.RunE3a([]int{0, 4, 16, 64, 256})
		if err != nil {
			b.Fatal(err)
		}
	}
	// Headline: cntlinear's cost at the largest level (linear in L).
	for _, r := range rows {
		if r.Protocol == "cntlinear" && r.Level == 256 {
			b.ReportMetric(float64(r.Cost), "cost@L=256")
		}
	}
}

func BenchmarkE3Cheat(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := core.RunE3b(8, []int{1, 2})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.Broken {
				b.Fatalf("cheat(%d) not broken", r.D)
			}
		}
	}
}

func BenchmarkE4ProbBlowup(b *testing.B) {
	var series []core.E4Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = core.RunE4(core.E4Params{
			Qs: []float64{0.25}, Ns: []int{4, 8, 12, 16}, Seeds: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range series {
		if s.Protocol == "cntlinear" {
			b.ReportMetric(s.PerPhaseRate, "phase-ratio")
		}
	}
}

func BenchmarkE5Tail(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.RunE5(core.E5Params{Ns: []int{4, 8, 16}, Seeds: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6Tradeoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.RunE6(0.25, 12, i); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks of the substrate ---

func BenchmarkChannelSendDeliver(b *testing.B) {
	r := NewRunner(Config{Protocol: SeqNum()})
	ch := r.ChData
	p := Packet{Header: "d0", Payload: "m"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.Send(p)
		if err := ch.Deliver(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckSafety(b *testing.B) {
	r := NewRunner(Config{Protocol: SeqNum(), RecordTrace: true})
	res := r.Run(50)
	if res.Err != nil {
		b.Fatal(res.Err)
	}
	tr := res.Trace
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := CheckSafety(tr); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkProtocolMessage(b *testing.B, p Protocol, q float64) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewRunner(Config{
			Protocol:   p,
			DataPolicy: Probabilistic(q, rng),
		})
		if res := r.Run(4); res.Err != nil {
			b.Fatal(res.Err)
		}
	}
}

func BenchmarkProtocolAltbit(b *testing.B)    { benchmarkProtocolMessage(b, AltBit(), 0) }
func BenchmarkProtocolSeqnum(b *testing.B)    { benchmarkProtocolMessage(b, SeqNum(), 0.25) }
func BenchmarkProtocolCntLinear(b *testing.B) { benchmarkProtocolMessage(b, CntLinear(), 0.25) }
func BenchmarkProtocolCntExp(b *testing.B)    { benchmarkProtocolMessage(b, CntExp(), 0) }

func BenchmarkReplaySearchAltbit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := NewRunner(Config{
			Protocol:    AltBit(),
			DataPolicy:  DelayFirst(1),
			RecordTrace: true,
		})
		if err := r.RunMessage("m0"); err != nil {
			b.Fatal(err)
		}
		if err := r.RunMessage("m1"); err != nil {
			b.Fatal(err)
		}
		rep, err := ReplaySearch(r, ReplayConfig{})
		if err != nil || rep.Cert == nil {
			b.Fatalf("attack failed: %v", err)
		}
	}
}

func BenchmarkClosingCost(b *testing.B) {
	r, err := BuildInTransit(CntLinear(), 64, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	if err := r.RunMessage("m"); err != nil {
		b.Fatal(err)
	}
	r.SubmitMsg("m")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ClosingCost(r, 1<<20); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunnerFork(b *testing.B) {
	r := NewRunner(Config{Protocol: CntLinear(), DataPolicy: DelayFirst(32), RecordTrace: true})
	if err := r.RunMessage("m"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := r.Fork(nil, nil)
		if f == nil {
			b.Fatal("nil fork")
		}
	}
}

func BenchmarkE2dInduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := core.RunE2d(3)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkE7TransportExplore(b *testing.B) {
	var rows []core.E7Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = core.RunE7()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Protocol == "swindow-s2-w1" {
			b.ReportMetric(float64(r.CexLength), "cex-events")
		}
	}
}

func BenchmarkExploreAltbit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := Explore(AltBit(), ExploreConfig{Messages: 2, MaxDataSends: 4, MaxAckSends: 4})
		if err != nil || rep.Violation == nil {
			b.Fatalf("explore failed: %v", err)
		}
	}
}

func BenchmarkExploreSeqnumExhaustive(b *testing.B) {
	var states int
	for i := 0; i < b.N; i++ {
		rep, err := Explore(SeqNum(), ExploreConfig{Messages: 2, MaxDataSends: 4, MaxAckSends: 4})
		if err != nil || !rep.Exhausted {
			b.Fatalf("explore failed: %v", err)
		}
		states = rep.States
	}
	b.ReportMetric(float64(states), "states")
}

func BenchmarkTransportWindowed(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < b.N; i++ {
		r := NewRunner(Config{
			Protocol:   SlidingWindow(0, 4),
			DataPolicy: Probabilistic(0.2, rng),
		})
		for m := 0; m < 8; m++ {
			r.SubmitMsg("m")
		}
		if err := r.RunToIdle(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10OneOverK(b *testing.B) {
	var rows []core.E10Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = core.RunE10(64, []int{2, 4, 8, 16})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.K == 16 {
			b.ReportMetric(float64(r.Cost), "cost@k=16")
		}
	}
}

func BenchmarkE11Trajectories(b *testing.B) {
	var rows []core.E11Series
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = core.RunE11([]float64{0.25}, 16, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range rows {
		b.ReportMetric(s.Rate, "phase-rate")
	}
}

func BenchmarkE8FIFOContrast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := core.RunE8()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkE9Ablations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := core.RunE9()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Variant == "cntlinear" && r.Broken {
				b.Fatal("baseline broken")
			}
		}
	}
}

// BenchmarkTraceOverhead measures the cost of trace recording on the same
// workload with and without a TraceLog attached (target: < 2× slowdown;
// see EXPERIMENTS.md for the recorded number).
func BenchmarkTraceOverhead(b *testing.B) {
	workload := func(b *testing.B, withTrace bool) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			cfg := Config{
				Protocol:   CntLinear(),
				DataPolicy: Probabilistic(0.25, rand.New(rand.NewSource(int64(i)))),
			}
			if withTrace {
				cfg.TraceLog = NewTraceLog()
			}
			r := NewRunner(cfg)
			if res := r.Run(8); res.Err != nil {
				b.Fatal(res.Err)
			}
			if withTrace {
				b.ReportMetric(float64(r.TraceLog().Len()), "events/run")
			}
		}
	}
	b.Run("bare", func(b *testing.B) { workload(b, false) })
	b.Run("recorded", func(b *testing.B) { workload(b, true) })
}

// BenchmarkReplayRoundTrip measures replaying a recorded run.
func BenchmarkReplayRoundTrip(b *testing.B) {
	l := NewTraceLog()
	r := NewRunner(Config{
		Protocol:   CntLinear(),
		DataPolicy: Probabilistic(0.25, rand.New(rand.NewSource(1))),
		TraceLog:   l,
	})
	if res := r.Run(8); res.Err != nil {
		b.Fatal(res.Err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rr, err := Replay(l)
		if err != nil {
			b.Fatal(err)
		}
		if rr.Divergence != nil {
			b.Fatalf("diverged: %v", rr.Divergence)
		}
	}
}

func BenchmarkUDPSeqnumRoundTrip(b *testing.B) {
	pair, err := NewLoopbackPair(SeqNum(), nil)
	if err != nil {
		b.Fatal(err)
	}
	defer pair.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pair.Sender.Send("bench"); err != nil {
			b.Fatal(err)
		}
		if err := pair.Sender.Flush(10 * time.Second); err != nil {
			b.Fatal(err)
		}
		<-pair.Receiver.Out()
	}
}

func BenchmarkWireCodec(b *testing.B) {
	p := Packet{Header: "d1234", Payload: "the quick brown fox jumps over the lazy dog"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := EncodePacket(p)
		if _, err := DecodePacket(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIOAutoAltbitWitness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := ioauto.NewAltBitSystem(ioauto.NonFIFOKind, 2, 2)
		if err != nil {
			b.Fatal(err)
		}
		res, err := ioauto.Reach(sys, ioauto.Violated, 1<<20)
		if err != nil || res.Found == nil {
			b.Fatalf("witness not found: %v", err)
		}
	}
}

func BenchmarkIOAutoSeqnumVerify(b *testing.B) {
	var states int
	for i := 0; i < b.N; i++ {
		sys, err := ioauto.NewSeqNumSystem(ioauto.NonFIFOKind, 2, 2)
		if err != nil {
			b.Fatal(err)
		}
		res, err := ioauto.Reach(sys, ioauto.Violated, 1<<22)
		if err != nil || !res.Exhausted {
			b.Fatalf("verification incomplete: %v", err)
		}
		states = res.States
	}
	b.ReportMetric(float64(states), "states")
}

func BenchmarkE12CrossFormalism(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := core.RunE12()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 8 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}
