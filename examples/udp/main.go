// The paper's model, on a real socket: run the naive sequence-number
// protocol over loopback UDP while a chaos wrapper imposes the non-FIFO
// physical layer — 25% of datagrams are dropped and 25% are reordered, in
// both directions. The unbounded-header protocol delivers everything, in
// order, regardless.
//
// Note which protocols can run here at all: the bounded-header counting
// protocols need the stale-copy genie, which no real network provides —
// the paper's conclusion ("pay the unbounded headers") made operational.
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	nonfifo "repro"
)

func main() {
	seed := int64(0)
	chaos := func(c net.PacketConn) net.PacketConn {
		seed++
		return nonfifo.NewChaosConn(c, nonfifo.ChaosConfig{
			DropProb: 0.25,
			HoldProb: 0.25,
			Seed:     seed,
		})
	}
	pair, err := nonfifo.NewLoopbackPair(nonfifo.SeqNum(), chaos,
		nonfifo.WithResendInterval(time.Millisecond))
	if err != nil {
		log.Fatal(err)
	}
	defer pair.Close()

	const n = 12
	fmt.Printf("sending %d messages over loopback UDP with 25%% loss + 25%% reordering…\n\n", n)
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := pair.Sender.Send(fmt.Sprintf("ledger-entry-%02d", i)); err != nil {
			log.Fatal(err)
		}
	}
	if err := pair.Sender.Flush(15 * time.Second); err != nil {
		log.Fatal(err)
	}

	for i := 0; i < n; i++ {
		select {
		case payload := <-pair.Receiver.Out():
			fmt.Printf("  delivered in order: %s\n", payload)
		case <-time.After(5 * time.Second):
			log.Fatalf("missing delivery %d", i)
		}
	}
	fmt.Printf("\nall %d messages delivered exactly once, in order, in %v\n", n, time.Since(start).Round(time.Millisecond))
	fmt.Println("(seqnum pays one fresh header per message — Theorem 3.1 says any")
	fmt.Println("protocol this robust with bounded space must.)")
}
