// Theorem 5.1 in action: over a probabilistic physical layer that delays
// each packet with probability q, any bounded-header protocol must send
// (1+q−ε)^Ω(n) packets to deliver n messages — even though the channel's
// *average* behaviour looks benign. The naive unbounded-header protocol
// pays only Θ(n).
//
// This example sweeps n for both protocols at q = 0.25 and prints the
// per-message packet bill side by side, showing the exponential/linear
// split the paper proves.
package main

import (
	"fmt"
	"log"
	"math/rand"

	nonfifo "repro"
)

func main() {
	const q = 0.25
	ns := []int{4, 8, 12, 16, 20, 24}

	fmt.Printf("probabilistic physical layer, delay probability q = %.2f\n", q)
	fmt.Printf("%6s  %22s  %22s\n", "n", "cntlinear (4 headers)", "seqnum (n headers)")
	fmt.Printf("%6s  %22s  %22s\n", "---", "total data packets", "total data packets")

	for _, n := range ns {
		cnt := totalPackets(nonfifo.CntLinear(), n, q, 1)
		sq := totalPackets(nonfifo.SeqNum(), n, q, 1)
		fmt.Printf("%6d  %22d  %22d\n", n, cnt, sq)
	}

	fmt.Println()
	fmt.Println("cntlinear's bill grows geometrically: every delayed copy becomes a stale")
	fmt.Println("packet the next same-bit phase must outnumber, compounding at ≈ 1/(1−q)")
	fmt.Println("per phase ≥ the paper's (1+q). seqnum's per-message headers make stale")
	fmt.Println("copies harmless, so its bill stays ≈ n/(1−q).")
}

func totalPackets(p nonfifo.Protocol, n int, q float64, seed int64) int {
	r := nonfifo.NewRunner(nonfifo.Config{
		Protocol:   p,
		DataPolicy: nonfifo.Probabilistic(q, rand.New(rand.NewSource(seed))),
	})
	res := r.Run(n)
	if res.Err != nil {
		log.Fatalf("%s n=%d: %v", p.Name(), n, res.Err)
	}
	return res.Metrics.TotalDataPackets
}
