// The paper's closing remark — "all our results can be extended to
// transport layer protocols over non-FIFO virtual links" — in action.
//
// A sliding window transport protocol with sequence numbers mod S has a
// bounded header alphabet, so Theorem 3.1's dichotomy applies one layer up:
// a segment delayed for a full wrap of the sequence space aliases into the
// receive window and is accepted as a new message. The exhaustive explorer
// finds the shortest such execution automatically; the unbounded-sequence
// variant survives the same exhaustive adversary.
package main

import (
	"fmt"
	"log"

	nonfifo "repro"
)

func main() {
	// Part 1: sequence numbers mod 2, window 1 — TCP with a 1-bit
	// sequence field, over a network that can reorder.
	bounded := nonfifo.SlidingWindow(2, 1)
	rep, err := nonfifo.Explore(bounded, nonfifo.ExploreConfig{
		Messages: 3, MaxDataSends: 6, MaxAckSends: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	if rep.Violation == nil {
		log.Fatal("unexpected: the bounded sequence space should be breakable")
	}
	fmt.Printf("%s over a non-FIFO virtual link:\n", bounded.Name())
	fmt.Printf("  %v\n", rep.Violation)
	fmt.Printf("  shortest counterexample (%d events, %d states explored):\n\n%s\n",
		len(rep.Counterexample), rep.States, rep.Counterexample)

	// Part 2: the same window with unbounded sequence numbers survives the
	// identical exhaustive adversary.
	unbounded := nonfifo.SlidingWindow(0, 2)
	safe, err := nonfifo.Explore(unbounded, nonfifo.ExploreConfig{
		Messages: 3, MaxDataSends: 6, MaxAckSends: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	if safe.Violation != nil {
		log.Fatal("unexpected: unbounded sequence numbers should be safe")
	}
	fmt.Printf("%s: SAFE — %d states exhausted, no violating interleaving exists\n",
		unbounded.Name(), safe.States)
	fmt.Println()
	fmt.Println("Theorem 3.1, one layer up: a transport protocol either spends unbounded")
	fmt.Println("sequence-number headers, or a wrap-around replay breaks it.")
}
