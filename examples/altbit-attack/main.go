// The alternating bit protocol is the classic bounded-header data link
// protocol — and over a non-FIFO channel it is unsafe. This example lets
// the replay adversary find the attack automatically and prints the
// machine-checked violation certificate: a concrete execution in which the
// receiver delivers more messages than were ever sent (rm = sm + 1), the
// invalid-execution shape at the heart of the paper's Theorems 3.1 and 4.1.
package main

import (
	"fmt"
	"log"

	nonfifo "repro"
)

func main() {
	// Deliver two messages while the channel quietly delays one copy of
	// the first data packet (the transmitter retransmits, so delivery
	// still succeeds). The delayed copy is now a stale d0 in transit.
	r := nonfifo.NewRunner(nonfifo.Config{
		Protocol:    nonfifo.AltBit(),
		DataPolicy:  nonfifo.DelayFirst(1),
		RecordTrace: true,
	})
	for i := 0; i < 2; i++ {
		if err := r.RunMessage(fmt.Sprintf("payment-%d", i)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("two messages delivered; channel still holds: %s\n\n", r.ChData.Key())

	// Hand the execution to the adversary: it searches over schedules of
	// stale-copy deliveries for one that breaks a safety property.
	rep, err := nonfifo.ReplaySearch(r, nonfifo.ReplayConfig{})
	if err != nil {
		log.Fatal(err)
	}
	if rep.Cert == nil {
		log.Fatal("unexpected: the attack should succeed against altbit")
	}
	// The certificate is independently re-checked against the trace
	// checkers before we trust it.
	if err := rep.Cert.Recheck(); err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep.Cert)

	// The same search cannot break the naive sequence-number protocol:
	// per-message headers make stale copies harmless.
	r2 := nonfifo.NewRunner(nonfifo.Config{
		Protocol:    nonfifo.SeqNum(),
		DataPolicy:  nonfifo.DelayFirst(1),
		RecordTrace: true,
	})
	for i := 0; i < 2; i++ {
		if err := r2.RunMessage(fmt.Sprintf("payment-%d", i)); err != nil {
			log.Fatal(err)
		}
	}
	rep2, err := nonfifo.ReplaySearch(r2, nonfifo.ReplayConfig{})
	if err != nil {
		log.Fatal(err)
	}
	if rep2.Cert != nil {
		log.Fatal("unexpected: seqnum should resist")
	}
	fmt.Printf("seqnum resisted the same adversary (%d replay schedules explored)\n", rep2.Nodes)
}
