// The paper's model in its original formalism. [LMF88] — the paper's
// foundation — specifies everything as I/O automata [LT87]; this example
// composes the Section-2 system (user ∥ A^t ∥ channel ∥ channel ∥ A^r ∥
// DL-monitor) in that formalism and decides safety by exhausting the
// reachable states:
//
//   - alternating bit over the non-FIFO channel: the DL-violation state is
//     reachable, and the shortest action witness is printed;
//   - alternating bit over the lossy FIFO channel: verified safe;
//   - the naive sequence-number protocol over the non-FIFO channel:
//     verified safe — Theorem 3.1's escape hatch, proven by exhaustion.
//
// The witness is converted into an execution trace and re-checked by the
// independent trace checkers before being believed.
package main

import (
	"fmt"
	"log"

	nonfifo "repro"
)

func main() {
	// 1. altbit over non-FIFO: the violation is reachable.
	sys, err := nonfifo.NewAltBitSystem(nonfifo.NonFIFOChannel, 2, 2)
	if err != nil {
		log.Fatal(err)
	}
	res, err := nonfifo.ReachAutomaton(sys, nonfifo.AutomatonViolated, 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	if res.Found == nil {
		log.Fatal("unexpected: violation should be reachable")
	}
	fmt.Printf("altbit ∥ non-FIFO channel: VIOLATION reachable (%d states searched)\n", res.States)
	fmt.Println("shortest witness (action sequence):")
	for i, a := range res.Found {
		fmt.Printf("  %2d  %s\n", i, a)
	}

	// Convert the witness to an execution trace and re-check it with the
	// trace checkers — two formalisms, one verdict.
	tr, err := nonfifo.AutomatonWitnessTrace(res.Found)
	if err != nil {
		log.Fatal(err)
	}
	if cerr := nonfifo.CheckSafety(tr); cerr == nil {
		log.Fatal("unexpected: witness passes the trace checkers")
	} else {
		fmt.Printf("\ntrace checkers confirm: %v\n", cerr)
	}

	// 2. altbit over FIFO: verified safe by exhaustion.
	fifoSys, err := nonfifo.NewAltBitSystem(nonfifo.FIFOChannel, 2, 2)
	if err != nil {
		log.Fatal(err)
	}
	fifoRes, err := nonfifo.ReachAutomaton(fifoSys, nonfifo.AutomatonViolated, 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	if fifoRes.Found != nil || !fifoRes.Exhausted {
		log.Fatal("unexpected: altbit should verify safe over FIFO")
	}
	fmt.Printf("\naltbit ∥ FIFO channel: VERIFIED SAFE (%d states exhausted)\n", fifoRes.States)

	// 3. seqnum over non-FIFO: verified safe by exhaustion.
	snSys, err := nonfifo.NewSeqNumSystem(nonfifo.NonFIFOChannel, 3, 2)
	if err != nil {
		log.Fatal(err)
	}
	snRes, err := nonfifo.ReachAutomaton(snSys, nonfifo.AutomatonViolated, 1<<22)
	if err != nil {
		log.Fatal(err)
	}
	if snRes.Found != nil || !snRes.Exhausted {
		log.Fatal("unexpected: seqnum should verify safe")
	}
	fmt.Printf("seqnum ∥ non-FIFO channel (n=3): VERIFIED SAFE (%d states exhausted)\n", snRes.States)
	fmt.Println("\nreordering breaks the bounded-header protocol; the n-header protocol")
	fmt.Println("survives the same exhaustive adversary — Theorem 3.1, by state-space search.")
}
