// Boundness, measured. The paper abstracts a protocol's space consumption
// into "boundness": from any semi-valid execution (one message outstanding),
// how many packets must be sent — once the channel starts behaving
// optimally — before the message is delivered?
//
// This example measures both boundness curves of Definitions 5 and 6 for
// three protocols and prints them side by side:
//
//   - M_f (Definition 5): closing cost as a function of messages delivered.
//     The AFWZ-style protocol's curve explodes (exponential even on a
//     perfect channel); the others stay flat.
//   - P_f (Definition 6): closing cost as a function of packets in transit.
//     The Afek-style protocol is linear — exactly the ⌊l/k⌋ of Theorem 4.1,
//     tight — while the naive protocol is flat because its headers are
//     unbounded.
package main

import (
	"fmt"
	"log"

	nonfifo "repro"
)

const budget = 1 << 20

func main() {
	fmt.Println("M_f-boundness (Definition 5): closing cost after i messages")
	fmt.Printf("%12s  %10s  %10s  %10s\n", "messages i", "seqnum", "cntlinear", "cntexp")
	mfSeq := mf(nonfifo.SeqNum(), 10)
	mfLin := mf(nonfifo.CntLinear(), 10)
	mfExp := mf(nonfifo.CntExp(), 10)
	for i := range mfSeq {
		fmt.Printf("%12d  %10d  %10d  %10d\n", i, mfSeq[i], mfLin[i], mfExp[i])
	}

	fmt.Println()
	fmt.Println("P_f-boundness (Definition 6): closing cost vs packets in transit")
	levels := []int{0, 4, 16, 64, 256}
	fmt.Printf("%12s  %10s  %10s\n", "in transit", "seqnum", "cntlinear")
	pfSeq := pf(nonfifo.SeqNum(), levels)
	pfLin := pf(nonfifo.CntLinear(), levels)
	for i, l := range levels {
		fmt.Printf("%12d  %10d  %10d\n", l, pfSeq[i], pfLin[i])
	}

	fmt.Println()
	fmt.Println("cntexp's M_f column is Theorem 3.1's space blow-up; cntlinear's P_f")
	fmt.Println("column is Theorem 4.1's tight linear bound; seqnum escapes both by")
	fmt.Println("paying Θ(n) headers.")
}

func mf(p nonfifo.Protocol, n int) []int {
	samples, err := nonfifo.MeasureMf(p, n, budget)
	if err != nil {
		log.Fatalf("%s: %v", p.Name(), err)
	}
	out := make([]int, len(samples))
	for i, s := range samples {
		out[i] = s.Cost
	}
	return out
}

func pf(p nonfifo.Protocol, levels []int) []int {
	samples, err := nonfifo.MeasurePf(p, levels, budget)
	if err != nil {
		log.Fatalf("%s: %v", p.Name(), err)
	}
	out := make([]int, len(samples))
	for i, s := range samples {
		out[i] = s.Cost
	}
	return out
}
