// Quickstart: run a data link protocol over an unreliable non-FIFO channel,
// verify the execution against the paper's correctness properties, and read
// off the three efficiency metrics (packets, headers, space).
package main

import (
	"fmt"
	"log"
	"math/rand"

	nonfifo "repro"
)

func main() {
	// The naive protocol (message i uses header i) over the paper's
	// probabilistic physical layer: each packet is delayed with
	// probability q = 0.25. Each channel gets its own RNG stream derived
	// from a single root seed, so the whole run replays from one number.
	const root = 42
	r := nonfifo.NewRunner(nonfifo.Config{
		Protocol:    nonfifo.SeqNum(),
		DataPolicy:  nonfifo.Probabilistic(0.25, rand.New(rand.NewSource(nonfifo.SplitSeed(root, "quickstart/data")))),
		AckPolicy:   nonfifo.Probabilistic(0.25, rand.New(rand.NewSource(nonfifo.SplitSeed(root, "quickstart/ack")))),
		RecordTrace: true,
	})

	const n = 12
	res := r.Run(n)
	if res.Err != nil {
		log.Fatalf("run failed: %v", res.Err)
	}

	// Verify the execution: PL1 on both channels, DL1 (exactly-once
	// delivery), DL2 (FIFO), DL3 (everything delivered).
	if err := nonfifo.CheckValid(res.Trace); err != nil {
		log.Fatalf("execution invalid: %v", err)
	}

	fmt.Printf("delivered %d/%d messages over a lossy non-FIFO channel\n", len(res.Delivered), n)
	fmt.Printf("  data packets sent: %d\n", res.Metrics.TotalDataPackets)
	fmt.Printf("  distinct headers:  %d (the naive protocol pays Θ(n) headers — Thm 3.1 says that's optimal)\n",
		res.Metrics.HeadersUsed)
	fmt.Printf("  peak state size:   %d (a counter: O(log n) space)\n", res.Metrics.MaxStateSize)
	fmt.Printf("  checkers:          PL1 ✓  DL1 ✓  DL2 ✓  DL3 ✓\n")
}
