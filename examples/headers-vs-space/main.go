// Theorem 3.1's dichotomy, measured: a data link protocol over a non-FIFO
// channel either spends ≥ n headers on n messages, or its space cannot be
// bounded by any function of n.
//
// Part 1 sweeps the message count and reports the header bill: the naive
// protocol pays Θ(n) headers (optimal, by the theorem), the counting
// protocols stay at 4.
//
// Part 2 fixes n = 8 messages and instead turns up the channel's
// adversarial delaying: the 4-header protocols' local state (stale-copy
// counters) grows without bound while n never changes, whereas the naive
// protocol's counter stays O(log n).
package main

import (
	"fmt"
	"log"

	nonfifo "repro"
)

func main() {
	fmt.Println("Part 1 — header growth h(n) on a clean channel")
	fmt.Printf("%8s  %10s  %10s  %10s\n", "n", "seqnum", "cntlinear", "cntexp")
	for _, n := range []int{1, 2, 4, 8, 16} {
		fmt.Printf("%8d  %10d  %10d  %10d\n", n,
			headers(nonfifo.SeqNum(), n),
			headers(nonfifo.CntLinear(), n),
			headers(nonfifo.CntExp(), n))
	}

	fmt.Println()
	fmt.Println("Part 2 — space at FIXED n=8, sweeping adversarially delayed copies D")
	fmt.Printf("%8s  %10s  %10s  %10s\n", "D", "seqnum", "cntlinear", "cntexp")
	for _, d := range []int{0, 16, 128, 1024} {
		fmt.Printf("%8d  %10d  %10d  %10d\n", d,
			stateSize(nonfifo.SeqNum(), d),
			stateSize(nonfifo.CntLinear(), d),
			stateSize(nonfifo.CntExp(), d))
	}

	fmt.Println()
	fmt.Println("The bounded-header protocols' state tracks the channel, not the message")
	fmt.Println("count: no function of n bounds it (Theorem 3.1). The naive protocol pays")
	fmt.Println("its Θ(n) headers and keeps O(log n) state regardless of the channel.")
}

func headers(p nonfifo.Protocol, n int) int {
	r := nonfifo.NewRunner(nonfifo.Config{
		Protocol: p,
		// The paper's header metric assumes all messages identical.
		Payload: func(int) string { return "m" },
	})
	res := r.Run(n)
	if res.Err != nil {
		log.Fatalf("%s n=%d: %v", p.Name(), n, res.Err)
	}
	return res.Metrics.HeadersUsed
}

func stateSize(p nonfifo.Protocol, delayed int) int {
	r := nonfifo.NewRunner(nonfifo.Config{
		Protocol:   p,
		DataPolicy: nonfifo.DelayFirst(delayed),
	})
	res := r.Run(8)
	if res.Err != nil {
		log.Fatalf("%s D=%d: %v", p.Name(), delayed, res.Err)
	}
	return res.Metrics.MaxStateSize
}
