package nonfifo

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"
)

// The facade tests exercise the library exactly as a downstream user would:
// everything through the public package, nothing through internal paths.

func TestQuickstartFlow(t *testing.T) {
	r := NewRunner(Config{
		Protocol:    SeqNum(),
		DataPolicy:  Probabilistic(0.25, rand.New(rand.NewSource(1))),
		RecordTrace: true,
	})
	res := r.Run(10)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if err := CheckValid(res.Trace); err != nil {
		t.Fatal(err)
	}
	if res.Metrics.HeadersUsed < 10 {
		t.Fatalf("seqnum headers = %d", res.Metrics.HeadersUsed)
	}
}

func TestProtocolsRegistry(t *testing.T) {
	ps := Protocols()
	for _, name := range []string{"altbit", "seqnum", "cntlinear", "cntexp"} {
		if _, ok := ps[name]; !ok {
			t.Fatalf("registry missing %s", name)
		}
	}
}

func TestAttackFlow(t *testing.T) {
	r := NewRunner(Config{
		Protocol:    AltBit(),
		DataPolicy:  DelayFirst(1),
		RecordTrace: true,
	})
	if err := r.RunMessage("m0"); err != nil {
		t.Fatal(err)
	}
	if err := r.RunMessage("m1"); err != nil {
		t.Fatal(err)
	}
	rep, err := ReplaySearch(r, ReplayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cert == nil {
		t.Fatal("altbit should be broken via the public API too")
	}
	if err := rep.Cert.Recheck(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Cert.String(), "DL1") {
		t.Fatal("certificate should mention DL1")
	}
}

func TestLivenessCertificationFlow(t *testing.T) {
	// Record a benign-looking run of the broken livelock protocol, certify
	// the livelock through the facade, and verify the pumped certificate
	// replays clean of safety violations while still failing DL3.
	l := NewTraceLog()
	r := NewRunner(Config{
		Protocol:    Livelock(),
		DataPolicy:  Reliable(),
		AckPolicy:   Reliable(),
		RecordTrace: true,
		TraceLog:    l,
	})
	r.SubmitMsg("m0")
	r.StepTransmit()

	out, err := CloseDrive(l, DriveReliable, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !out.CycleFound || out.DL3 == nil {
		t.Fatalf("closing drive found no livelock cycle: %+v", out)
	}
	cert, err := CertifyLivelock(l, CertifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Replay(cert.Pumped(3))
	if err != nil {
		t.Fatal(err)
	}
	if rr.Verdict != nil || rr.DL3 == nil || rr.Divergence != nil {
		t.Fatalf("pumped certificate: verdict=%v dl3=%v divergence=%v",
			rr.Verdict, rr.DL3, rr.Divergence)
	}
	sr, err := ShrinkLiveness(l, DriveReliable)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Property != "DL3" || sr.FinalOps != 1 {
		t.Fatalf("liveness shrink: property %s, %d ops", sr.Property, sr.FinalOps)
	}
}

func TestBoundnessFlow(t *testing.T) {
	samples, err := MeasurePf(CntLinear(), []int{0, 8}, 1<<18)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 2 || samples[1].Cost < 8 {
		t.Fatalf("samples = %+v", samples)
	}
	r, err := BuildInTransit(SeqNum(), 4, 1<<18)
	if err != nil {
		t.Fatal(err)
	}
	if r.ChData.InTransit() < 4 {
		t.Fatal("BuildInTransit under-delivered")
	}
	r.SubmitMsg("x")
	cost, err := ClosingCost(r, 1<<18)
	if err != nil || cost < 1 {
		t.Fatalf("ClosingCost = %d, %v", cost, err)
	}
}

func TestPumpFlow(t *testing.T) {
	r := NewRunner(Config{Protocol: Livelock()})
	r.SubmitMsg("m")
	rep, err := Pump(r, 1000)
	if err != nil || !rep.Pumped {
		t.Fatalf("pump = %+v, %v", rep, err)
	}
}

func TestHeaderBudgetFlow(t *testing.T) {
	rep, err := HeaderBudget(Cheat(1), 3, 3, ReplayConfig{MaxDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replay.Cert == nil {
		t.Fatal("cheat(1) should be broken")
	}
}

func TestMeasureMfFlow(t *testing.T) {
	samples, err := MeasureMf(AltBit(), 5, 1<<18)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 5 {
		t.Fatalf("samples = %+v", samples)
	}
}

func TestRunExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	var buf bytes.Buffer
	if err := RunExperiments(&buf, Quick); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "== E6:") {
		t.Fatal("experiment output incomplete")
	}
}

func TestConstantsExported(t *testing.T) {
	if TtoR == RtoT {
		t.Fatal("direction constants collide")
	}
	if DeliverNow == Delay || Delay == Drop {
		t.Fatal("decision constants collide")
	}
}

func TestExploreFlow(t *testing.T) {
	rep, err := Explore(AltBit(), ExploreConfig{Messages: 2, MaxDataSends: 4, MaxAckSends: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation == nil {
		t.Fatal("explorer should break altbit")
	}
	if err := CheckSafety(rep.Counterexample); err == nil {
		t.Fatal("counterexample passes the checkers")
	}
	safe, err := Explore(SeqNum(), ExploreConfig{Messages: 2, MaxDataSends: 4, MaxAckSends: 4})
	if err != nil {
		t.Fatal(err)
	}
	if safe.Violation != nil || !safe.Exhausted {
		t.Fatalf("seqnum should verify safe: %+v", safe)
	}
}

func TestSlidingWindowFlow(t *testing.T) {
	p := SlidingWindow(2, 1)
	if k, bounded := p.HeaderBound(); !bounded || k != 4 {
		t.Fatalf("HeaderBound = %d,%t", k, bounded)
	}
	rep, err := Explore(p, ExploreConfig{Messages: 3, MaxDataSends: 6, MaxAckSends: 6})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation == nil {
		t.Fatal("finite sequence space should be breakable")
	}
	u := SlidingWindow(0, 2)
	safe, err := Explore(u, ExploreConfig{Messages: 2, MaxDataSends: 4, MaxAckSends: 4})
	if err != nil {
		t.Fatal(err)
	}
	if safe.Violation != nil {
		t.Fatal("unbounded sequence space should be safe")
	}
}

func TestInductionFlow(t *testing.T) {
	rep, err := Induction(AltBit(), 2, 10, ReplayConfig{MaxDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete || rep.Replay.Cert == nil {
		t.Fatalf("induction should break altbit: %+v", rep)
	}
}

func TestNetFlowOverUDP(t *testing.T) {
	pair, err := NewLoopbackPair(SeqNum(), func(c net.PacketConn) net.PacketConn {
		return NewChaosConn(c, ChaosConfig{DropProb: 0.2, HoldProb: 0.2, Seed: 9})
	}, WithResendInterval(500*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	defer pair.Close()
	for i := 0; i < 5; i++ {
		if err := pair.Sender.Send(fmt.Sprintf("m%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := pair.Sender.Flush(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		select {
		case got := <-pair.Receiver.Out():
			if got != fmt.Sprintf("m%d", i) {
				t.Fatalf("delivery %d = %q", i, got)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("missing delivery %d", i)
		}
	}
}

func TestPacketCodecRoundTrip(t *testing.T) {
	p := Packet{Header: "d7", Payload: "data"}
	got, err := DecodePacket(EncodePacket(p))
	if err != nil || got != p {
		t.Fatalf("round trip: %v, %v", got, err)
	}
}

func TestFormalLayerFlow(t *testing.T) {
	sys, err := NewAltBitSystem(NonFIFOChannel, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReachAutomaton(sys, AutomatonViolated, 1<<20)
	if err != nil || res.Found == nil {
		t.Fatalf("reach: %+v, %v", res, err)
	}
	tr, err := AutomatonWitnessTrace(res.Found)
	if err != nil {
		t.Fatal(err)
	}
	if CheckSafety(tr) == nil {
		t.Fatal("witness should fail the checkers")
	}
	safe, err := NewSeqNumSystem(NonFIFOChannel, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := ReachAutomaton(safe, AutomatonViolated, 1<<22)
	if err != nil || sres.Found != nil || !sres.Exhausted {
		t.Fatalf("seqnum verification: %+v, %v", sres, err)
	}
	if _, err := ComposeAutomata("empty"); err == nil {
		t.Fatal("empty composition accepted")
	}
	if ActionInput == ActionOutput || ActionOutput == ActionInternal {
		t.Fatal("class constants collide")
	}
}

// TestCapstoneMatrix runs every safe protocol in the library — data link
// and transport, bounded and unbounded headers — against a grid of channel
// behaviours, entirely through the public API, and validates every run
// against both checker formulations' facade entry points.
func TestCapstoneMatrix(t *testing.T) {
	protocols := []Protocol{
		SeqNum(),
		CntLinear(),
		CntExp(),
		CntK(3),
		SlidingWindow(0, 3),
		GoBackN(0, 2),
	}
	policies := []struct {
		name string
		mk   func(seed int64) Policy
	}{
		{"reliable", func(int64) Policy { return Reliable() }},
		{"lossy", func(int64) Policy { return DropEvery(3) }},
		{"delaying", func(int64) Policy { return DelayFirst(5) }},
		{"probabilistic", func(seed int64) Policy {
			return Probabilistic(0.25, rand.New(rand.NewSource(seed)))
		}},
	}
	for _, p := range protocols {
		for _, pol := range policies {
			p, pol := p, pol
			t.Run(p.Name()+"/"+pol.name, func(t *testing.T) {
				r := NewRunner(Config{
					Protocol:    p,
					DataPolicy:  pol.mk(1),
					AckPolicy:   pol.mk(2),
					RecordTrace: true,
				})
				const n = 6
				for i := 0; i < n; i++ {
					r.SubmitMsg(fmt.Sprintf("cap-%d", i))
				}
				if err := r.RunToIdle(); err != nil {
					t.Fatal(err)
				}
				res := r.Result()
				if len(res.Delivered) != n {
					t.Fatalf("delivered %d of %d", len(res.Delivered), n)
				}
				for i, d := range res.Delivered {
					if d != fmt.Sprintf("cap-%d", i) {
						t.Fatalf("order broken: %v", res.Delivered)
					}
				}
				if err := CheckValid(res.Trace); err != nil {
					t.Fatalf("trace invalid: %v", err)
				}
			})
		}
	}
}
